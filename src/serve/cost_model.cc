#include "serve/cost_model.hh"

#include <algorithm>

#include "gpu/inference.hh"
#include "llm/workload.hh"
#include "sim/logging.hh"

namespace cxlpnm
{
namespace serve
{

void
CostCurve::addSample(std::uint64_t tokens, double seconds)
{
    fatal_if(!points_.empty() &&
                 static_cast<double>(tokens) <= points_.back().tokens,
             "cost-curve samples must have increasing token counts");
    fatal_if(seconds < 0.0, "cost-curve sample with negative seconds");
    points_.push_back({static_cast<double>(tokens), seconds});
}

double
CostCurve::at(std::uint64_t tokens) const
{
    fatal_if(points_.empty(), "evaluating an empty cost curve");
    const double t = static_cast<double>(tokens);
    if (points_.size() == 1)
        return points_.front().seconds;

    // Find the segment whose [lo, hi) brackets t; the first/last
    // segment extrapolates beyond the sampled range.
    std::size_t hi = 1;
    while (hi + 1 < points_.size() && points_[hi].tokens < t)
        ++hi;
    const Point &a = points_[hi - 1];
    const Point &b = points_[hi];
    const double slope =
        (b.seconds - a.seconds) / (b.tokens - a.tokens);
    return std::max(0.0, a.seconds + slope * (t - a.tokens));
}

double
BatchCostModel::prefillSeconds(std::uint64_t l_in) const
{
    return sumCurve.at(l_in) + commPerIterationSeconds +
        commPerTokenSeconds * static_cast<double>(l_in);
}

double
BatchCostModel::prefillSeconds(std::uint64_t l_in,
                               std::uint64_t cached_tokens) const
{
    const std::uint64_t computed =
        cached_tokens >= l_in ? 1 : l_in - cached_tokens;
    return prefillSeconds(computed);
}

double
BatchCostModel::decodeIterationSeconds(
    const std::vector<std::uint64_t> &contexts) const
{
    if (contexts.empty())
        return 0.0;
    const double batch = static_cast<double>(contexts.size());
    double ctx_sum = 0.0;
    for (std::uint64_t c : contexts)
        ctx_sum += static_cast<double>(c);

    // Weights stream once for everyone; KV traffic is per member. The
    // compute floor kicks in when the batched GEMM stops being
    // memory-bound.
    const double mem =
        genWeightSeconds + genKvPerTokenSeconds * ctx_sum;
    const double compute = perTokenComputeSeconds * batch;
    return std::max(mem, compute) + perTokenHostSeconds * batch +
        commPerIterationSeconds + commPerTokenSeconds * batch;
}

double
BatchCostModel::decodeSeconds(std::uint64_t context) const
{
    return decodeIterationSeconds({context});
}

namespace
{

/** Calibration points shared by the PNM and GPU paths. */
struct SamplePlan
{
    std::uint64_t genLo, genHi;
    std::vector<std::uint64_t> sumLengths;
};

SamplePlan
planSamples(const llm::ModelConfig &model, std::uint64_t max_context)
{
    fatal_if(model.maxPositions < 4, "model positional range too small "
             "to calibrate a serving cost model");
    const std::uint64_t hi = std::clamp<std::uint64_t>(
        max_context, 4, model.maxPositions);

    SamplePlan plan;
    plan.genLo = std::max<std::uint64_t>(2, hi / 8);
    plan.genHi = hi;
    if (plan.genHi <= plan.genLo)
        plan.genHi = plan.genLo + 1;

    for (std::uint64_t l : {std::max<std::uint64_t>(1, hi / 8),
                            std::max<std::uint64_t>(2, hi / 2), hi}) {
        if (plan.sumLengths.empty() || l > plan.sumLengths.back())
            plan.sumLengths.push_back(l);
    }
    return plan;
}

/** Decompose two gen-stage samples into shared + per-context terms. */
void
fitGenLine(BatchCostModel &cost, const SamplePlan &plan, double g_lo,
           double g_hi)
{
    const double slope = (g_hi - g_lo) /
        static_cast<double>(plan.genHi - plan.genLo);
    cost.genKvPerTokenSeconds = std::max(0.0, slope);
    cost.genWeightSeconds = std::max(
        0.0, g_lo - cost.genKvPerTokenSeconds *
                 static_cast<double>(plan.genLo));
}

double
genFlopsPerToken(const llm::ModelConfig &model)
{
    // Context 1 isolates the context-independent (weight) FLOPs.
    return llm::summarize(llm::genStageOps(model, 1)).flops;
}

} // namespace

BatchCostModel
calibratePnmCostModel(const llm::ModelConfig &model,
                      const core::PnmPlatformConfig &cfg,
                      std::uint64_t max_context, int tensor_shard)
{
    const SamplePlan plan = planSamples(model, max_context);

    BatchCostModel cost;
    fitGenLine(cost, plan,
               core::pnmGenStageSeconds(model, cfg, plan.genLo,
                                        tensor_shard),
               core::pnmGenStageSeconds(model, cfg, plan.genHi,
                                        tensor_shard));
    for (std::uint64_t l : plan.sumLengths)
        cost.sumCurve.addSample(
            l, core::pnmSumStageSeconds(model, cfg, l, tensor_shard));

    // Batched decode lands on the PE array as a thin GEMM; assume the
    // sum-stage steady-state efficiency.
    cost.perTokenComputeSeconds = genFlopsPerToken(model) /
        tensor_shard / (0.8 * cfg.accel.peArrayPeakFlops());
    return cost;
}

BatchCostModel
calibrateGpuCostModel(const llm::ModelConfig &model,
                      const gpu::GpuSpec &spec,
                      const gpu::GpuCalibration &calib,
                      std::uint64_t max_context, int tensor_parallel)
{
    fatal_if(tensor_parallel < 1, "need at least one GPU");
    const SamplePlan plan = planSamples(model, max_context);
    const bool offload = model.weightBytes() /
            static_cast<std::uint64_t>(tensor_parallel) >
        spec.memBytes;

    auto stage_seconds = [&](const std::vector<llm::Op> &ops) {
        return gpu::runStage(ops, spec, calib, tensor_parallel,
                             offload)
            .seconds;
    };

    BatchCostModel cost;
    fitGenLine(cost, plan,
               stage_seconds(llm::genStageOps(model, plan.genLo)),
               stage_seconds(llm::genStageOps(model, plan.genHi)));
    for (std::uint64_t l : plan.sumLengths)
        cost.sumCurve.addSample(
            l, stage_seconds(llm::sumStageOps(model, l)));

    cost.perTokenComputeSeconds = genFlopsPerToken(model) /
        tensor_parallel / (0.5 * spec.peakFp16Flops);
    cost.perTokenHostSeconds = calib.frameworkPerTokenSec;
    return cost;
}

void
addModelParallelComm(BatchCostModel &cost,
                     const llm::ModelConfig &model,
                     const cxl::CxlLinkParams &link,
                     const core::D2dModel &d2d, int model_parallel)
{
    fatal_if(model_parallel < 1, "bad model-parallel degree");
    if (model_parallel == 1)
        return;

    // Two reductions per layer per stage (after Proj and FC2, as in
    // core::runPnmAppliance); each token-row contributes a 2*dModel
    // byte payload crossing two link hops.
    const double reductions = 2.0 * model.numLayers;
    cost.commPerIterationSeconds += reductions * d2d.fixedSeconds;
    cost.commPerTokenSeconds += reductions * 2.0 *
        (2.0 * model.dModel) / link.usableBytesPerSec();
}

std::uint64_t
pnmKvCapacityBytes(const llm::ModelConfig &model,
                   const core::PnmPlatformConfig &cfg,
                   int model_parallel)
{
    fatal_if(model_parallel < 1, "bad model-parallel degree");
    const std::uint64_t capacity =
        static_cast<std::uint64_t>(cfg.dramSpec.capacityPerModule()) *
        static_cast<std::uint64_t>(model_parallel);
    fatal_if(model.weightBytes() >= capacity, "model ", model.name,
             " does not fit ", model_parallel, " CXL-PNM device(s)");
    return capacity - model.weightBytes();
}

std::uint64_t
gpuKvCapacityBytes(const llm::ModelConfig &model,
                   const gpu::GpuSpec &spec, int tensor_parallel)
{
    fatal_if(tensor_parallel < 1, "bad tensor-parallel degree");
    const std::uint64_t capacity = spec.memBytes *
        static_cast<std::uint64_t>(tensor_parallel);
    // When the weights do not fit they stream from the host
    // (offload path) and the whole device memory backs KV instead.
    if (model.weightBytes() > capacity)
        return capacity;
    return capacity - model.weightBytes();
}

} // namespace serve
} // namespace cxlpnm
