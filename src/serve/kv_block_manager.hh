/**
 * @file
 * Paged KV-cache allocator for the serving simulator (vLLM-style).
 *
 * The byte-granular KvCachePool reserves every request's *worst-case*
 * footprint up front, so admission is as pessimistic as the longest
 * possible generation. The block manager instead carves the same
 * capacity into fixed-size blocks of `blockTokens` KV slots and hands
 * them out on demand: a request holds only the blocks its *current*
 * context needs, growing one block at a time during decode. Blocks are
 * ref-counted so multiple requests (and the prefix cache) can share
 * the blocks of a common prompt prefix; a block returns to the free
 * list when its last reference drops.
 *
 * This is capacity *accounting*, not data movement: the simulator
 * never stores KV values, so "allocate" and "copy-on-write" are
 * counter updates with the same admission semantics a real paged
 * engine would enforce (the capacity the paper's LPDDR5X module wins
 * on, Table I / §V-A, spent at block granularity instead of worst
 * case).
 */

#ifndef CXLPNM_SERVE_KV_BLOCK_MANAGER_HH
#define CXLPNM_SERVE_KV_BLOCK_MANAGER_HH

#include <cstdint>
#include <vector>

namespace cxlpnm
{
namespace serve
{

/** Index of one KV block inside a manager; dense from 0. */
using BlockId = std::uint32_t;

constexpr BlockId InvalidBlock = static_cast<BlockId>(-1);

/** One-call counter snapshot (metrics / tracer consumers). */
struct KvBlockStats
{
    std::uint64_t totalBlocks = 0;
    std::uint64_t freeBlocks = 0;
    std::uint64_t usedBlocks = 0;
    std::uint64_t peakUsedBlocks = 0;
    std::uint64_t blockBytes = 0;
    std::uint64_t allocations = 0;
    std::uint64_t frees = 0;
};

/** Fixed-size, ref-counted block allocator over a byte capacity. */
class KvBlockManager
{
  public:
    /**
     * Block lifecycle observer. The tiered pool hooks this to keep
     * per-block residency in lockstep with allocation: a block freed
     * mid-migration (preemption, fault, prefix eviction) must drop its
     * tier state - and abandon its in-flight transfer - the instant
     * the manager reclaims it, not when the migration engine next
     * looks. Null (the default) costs one branch per alloc/free.
     */
    class Observer
    {
      public:
        virtual ~Observer() = default;
        /** @p b was just handed out with refcount 1. */
        virtual void onAllocated(BlockId b) = 0;
        /** @p b's last reference dropped; it is back on the free list. */
        virtual void onFreed(BlockId b) = 0;
    };

    void setObserver(Observer *o) { observer_ = o; }
    /**
     * @param capacity_bytes  device bytes left for KV (> 0)
     * @param block_bytes     bytes of one block, i.e.
     *                        model.kvCacheBytes(blockTokens) (> 0);
     *                        must not exceed the capacity.
     */
    KvBlockManager(std::uint64_t capacity_bytes,
                   std::uint64_t block_bytes);

    std::size_t totalBlocks() const { return refs_.size(); }
    std::size_t freeBlocks() const { return freeList_.size(); }
    std::size_t
    usedBlocks() const
    {
        return totalBlocks() - freeBlocks();
    }
    std::size_t peakUsedBlocks() const { return peakUsed_; }
    std::uint64_t blockBytes() const { return blockBytes_; }

    /** Fraction of blocks currently allocated. */
    double
    utilization() const
    {
        return totalBlocks()
            ? static_cast<double>(usedBlocks()) / totalBlocks()
            : 0.0;
    }

    /**
     * Allocate one block with refcount 1; InvalidBlock when the free
     * list is empty (the caller decides between eviction, head-of-line
     * blocking, and preemption).
     */
    BlockId tryAllocate();

    /** One more holder of @p b (prefix sharing); fatal on a free block. */
    void addRef(BlockId b);

    /**
     * Drop one reference; the block returns to the free list when the
     * count reaches zero (returns true then). Fatal on a free block.
     */
    bool release(BlockId b);

    std::uint32_t refCount(BlockId b) const;

    // --- lifetime accounting (for metrics/reports) ---
    std::uint64_t allocations() const { return allocations_; }
    std::uint64_t frees() const { return frees_; }

    /** All counters in one consistent snapshot. */
    KvBlockStats stats() const;

    /** Full allocator state (warm-state snapshot/restore). The
     *  observer is wiring, not state, and is left untouched. */
    struct State
    {
        std::vector<std::uint32_t> refs;
        std::vector<BlockId> freeList;
        std::uint64_t peakUsed = 0;
        std::uint64_t allocations = 0;
        std::uint64_t frees = 0;
    };

    State state() const;
    /** Fatal when @p s was captured from a differently-sized pool. */
    void restore(const State &s);

  private:
    std::uint64_t blockBytes_;
    std::vector<std::uint32_t> refs_; // 0 = free
    std::vector<BlockId> freeList_;   // LIFO; seeded so the first
                                      // allocations are 0, 1, 2, ...
    std::size_t peakUsed_ = 0;
    std::uint64_t allocations_ = 0;
    std::uint64_t frees_ = 0;
    Observer *observer_ = nullptr;
};

} // namespace serve
} // namespace cxlpnm

#endif // CXLPNM_SERVE_KV_BLOCK_MANAGER_HH
