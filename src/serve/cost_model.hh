/**
 * @file
 * Iteration-level batch cost models for the serving simulator.
 *
 * The continuous-batching scheduler executes one *iteration* at a time
 * (every running request advances by one token, Orca-style). Its cost
 * model is decomposed per stage rather than per request:
 *
 *   prefill(l)        - one sum stage over an l-token prompt, charged
 *                       when the request joins the batch;
 *   decode iteration  - the weights stream once for the whole batch
 *                       (the shared term that makes batching pay on a
 *                       memory-bound device), each member adds its own
 *                       KV-cache traffic, and per-token compute/host
 *                       floors bound the benefit at large batches.
 *
 * The coefficients are *calibrated*, not invented: the CXL-PNM model
 * times single stages on the event-driven engine
 * (core::pnmSumStageSeconds / pnmGenStageSeconds), the GPU model
 * evaluates the calibrated roofline (gpu::runStage) on the same op
 * lists.
 */

#ifndef CXLPNM_SERVE_COST_MODEL_HH
#define CXLPNM_SERVE_COST_MODEL_HH

#include <cstdint>
#include <vector>

#include "core/inference_engine.hh"
#include "core/platform.hh"
#include "gpu/gpu_spec.hh"
#include "llm/model_config.hh"

namespace cxlpnm
{
namespace serve
{

/** Piecewise-linear seconds-vs-tokens curve over measured samples. */
class CostCurve
{
  public:
    struct Point
    {
        double tokens;
        double seconds;
    };

    /** Samples must be added with strictly increasing token counts. */
    void addSample(std::uint64_t tokens, double seconds);

    bool empty() const { return points_.empty(); }

    /** The measured samples, for serialization (serve/calibration). */
    const std::vector<Point> &points() const { return points_; }

    /**
     * Seconds at @p tokens: linear interpolation between samples,
     * linear extrapolation beyond them (clamped to >= 0).
     */
    double at(std::uint64_t tokens) const;

  private:
    std::vector<Point> points_;
};

/** Cost of one scheduler iteration for a given batch composition. */
struct BatchCostModel
{
    /** Prefill (sum-stage) seconds vs. prompt length. */
    CostCurve sumCurve;

    /** Decode: weight streaming + control, shared per iteration. */
    double genWeightSeconds = 0.0;
    /** Decode: KV-read seconds per attended context token. */
    double genKvPerTokenSeconds = 0.0;
    /** Compute floor per batched token (batching turns the GEMVs into
     *  a thin GEMM; compute grows with the batch). */
    double perTokenComputeSeconds = 0.0;
    /** Host-side framework work per generated token. */
    double perTokenHostSeconds = 0.0;

    /** Model-parallel reductions: fixed cost per iteration and
     *  payload cost per batched token (0 when modelParallel == 1). */
    double commPerIterationSeconds = 0.0;
    double commPerTokenSeconds = 0.0;

    /** One sum stage over an @p l_in-token prompt. */
    double prefillSeconds(std::uint64_t l_in) const;

    /**
     * Prefill with @p cached_tokens of the prompt already resident in
     * the KV cache (prefix-cache hit): only the uncached suffix runs
     * the sum stage and crosses the reduction links. At least one
     * token is always computed - the last prompt position must run to
     * produce the first output logits even on a full-prefix hit.
     */
    double prefillSeconds(std::uint64_t l_in,
                          std::uint64_t cached_tokens) const;

    /**
     * One decode iteration over a batch whose members attend
     * @p contexts tokens each (empty batch: 0).
     */
    double
    decodeIterationSeconds(const std::vector<std::uint64_t> &contexts)
        const;

    /** Convenience: a batch of one. */
    double decodeSeconds(std::uint64_t context) const;
};

/**
 * Calibrate a CXL-PNM cost model by timing single stages on the
 * event-driven engine. @p max_context bounds the calibration range
 * (and the cost of calibration itself); clamped to the model's
 * positional range. @p tensor_shard mirrors §VIII-A model parallelism.
 */
BatchCostModel calibratePnmCostModel(const llm::ModelConfig &model,
                                     const core::PnmPlatformConfig &cfg,
                                     std::uint64_t max_context,
                                     int tensor_shard = 1);

/** Calibrate a GPU cost model from the roofline kernel model. */
BatchCostModel calibrateGpuCostModel(const llm::ModelConfig &model,
                                     const gpu::GpuSpec &spec,
                                     const gpu::GpuCalibration &calib,
                                     std::uint64_t max_context,
                                     int tensor_parallel = 1);

/**
 * Add §VIII-A host-orchestrated d2d reduction costs for a
 * tensor-parallel group of @p model_parallel devices: two reductions
 * per layer per stage. The fixed/per-token comm terms apply to both
 * prefill stages and decode iterations.
 */
void addModelParallelComm(BatchCostModel &cost,
                          const llm::ModelConfig &model,
                          const cxl::CxlLinkParams &link,
                          const core::D2dModel &d2d,
                          int model_parallel);

/** KV bytes left on one CXL-PNM model instance of @p model_parallel
 *  devices after the (sharded) weights. */
std::uint64_t pnmKvCapacityBytes(const llm::ModelConfig &model,
                                 const core::PnmPlatformConfig &cfg,
                                 int model_parallel = 1);

/** KV bytes left on @p tensor_parallel GPUs after the weights
 *  (0 when the weights alone do not fit). */
std::uint64_t gpuKvCapacityBytes(const llm::ModelConfig &model,
                                 const gpu::GpuSpec &spec,
                                 int tensor_parallel = 1);

} // namespace serve
} // namespace cxlpnm

#endif // CXLPNM_SERVE_COST_MODEL_HH
