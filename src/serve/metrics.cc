#include "serve/metrics.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace cxlpnm
{
namespace serve
{

ServeMetrics::ServeMetrics(stats::StatGroup *parent, std::string name,
                           const MetricsConfig &cfg)
    : cfg_(cfg), group_(parent, std::move(name)),
      tokenLatency_(&group_, "token_latency",
                    "seconds between successive tokens", 0.0,
                    cfg.tokenLatencyHi, cfg.tokenLatencyBuckets,
                    cfg.autoExtendLatencies),
      ttft_(&group_, "ttft", "time to first token, seconds", 0.0,
            cfg.ttftHi, cfg.ttftBuckets, cfg.autoExtendLatencies),
      batchSize_(&group_, "batch_size", "requests per iteration"),
      queueDepth_(&group_, "queue_depth",
                  "requests waiting for admission"),
      kvUtilization_(&group_, "kv_utilization",
                     "reserved fraction of the KV pool"),
      completedStat_(&group_, "completed", "requests finished"),
      rejectedStat_(&group_, "rejected", "requests never admissible"),
      tokensStat_(&group_, "tokens", "output tokens produced"),
      sloMetStat_(&group_, "slo_met", "finished requests meeting SLO"),
      iterFailStat_(&group_, "iteration_failures",
                    "batch iterations lost to injected faults"),
      retryStat_(&group_, "request_retries",
                 "requests restarted after a failed iteration"),
      failedStat_(&group_, "requests_failed",
                  "requests abandoned after their retry budget"),
      degradedStat_(&group_, "degraded_seconds",
                    "device-seconds in post-failure cooldown"),
      prefixHitStat_(&group_, "prefix_hit_blocks",
                     "shared-prefix blocks served from the cache"),
      prefixLookupStat_(&group_, "prefix_lookup_blocks",
                        "shared-prefix blocks looked up at admission"),
      cachedTokenStat_(&group_, "cached_prefix_tokens",
                       "prompt tokens that skipped the sum stage"),
      sharedTokenStat_(&group_, "shared_prefix_tokens",
                       "shared prompt tokens looked up at admission"),
      cowStat_(&group_, "cow_copies",
               "copy-on-write block copies (partial-tail sharing)"),
      cacheEvictStat_(&group_, "cache_evictions",
                      "prefix-cache blocks evicted under pressure"),
      preemptStat_(&group_, "preemptions",
                   "requests evicted from the batch for KV capacity"),
      recomputeStat_(&group_, "recompute_tokens",
                     "tokens discarded by preemption, recomputed later"),
      kvFragmentation_(&group_, "kv_fragmentation",
                       "unused slot fraction of allocated KV blocks")
{
}

void
ServeMetrics::sampleIteration(std::size_t batch_size,
                              std::size_t queue_depth,
                              double kv_utilization)
{
    batchSize_.sample(static_cast<double>(batch_size));
    queueDepth_.sample(static_cast<double>(queue_depth));
    kvUtilization_.sample(kv_utilization);
    peakKvUtil_ = std::max(peakKvUtil_, kv_utilization);
}

void
ServeMetrics::noteKvInterval(double seconds, double kv_utilization,
                             std::uint64_t blocks_in_use)
{
    kvUtilSecondsIntegral_ += kv_utilization * seconds;
    kvBlockSecondsIntegral_ +=
        static_cast<double>(blocks_in_use) * seconds;
    kvIntervalSeconds_ += seconds;
}

void
ServeMetrics::notePrefixLookup(std::uint64_t lookup_blocks,
                               std::uint64_t hit_blocks,
                               std::uint64_t shared_tokens,
                               std::uint64_t cached_tokens)
{
    prefixLookupN_ += lookup_blocks;
    prefixHitN_ += hit_blocks;
    sharedTokensN_ += shared_tokens;
    cachedTokensN_ += cached_tokens;
    prefixLookupStat_ += static_cast<double>(lookup_blocks);
    prefixHitStat_ += static_cast<double>(hit_blocks);
    sharedTokenStat_ += static_cast<double>(shared_tokens);
    cachedTokenStat_ += static_cast<double>(cached_tokens);
}

void
ServeMetrics::noteCowCopy()
{
    ++cowN_;
    ++cowStat_;
}

void
ServeMetrics::noteCacheEvictions(std::uint64_t n)
{
    cacheEvictN_ += n;
    cacheEvictStat_ += static_cast<double>(n);
}

void
ServeMetrics::notePreemption(std::uint64_t recompute_tokens)
{
    ++preemptN_;
    ++preemptStat_;
    recomputeN_ += recompute_tokens;
    recomputeStat_ += static_cast<double>(recompute_tokens);
}

void
ServeMetrics::sampleKvFragmentation(double fraction)
{
    kvFragmentation_.sample(fraction);
}

void
ServeMetrics::notePeakKvBlocks(std::uint64_t blocks)
{
    peakKvBlocks_ = std::max(peakKvBlocks_, blocks);
}

ServeMetrics::TierStatBlock::TierStatBlock(stats::StatGroup *parent)
    : group(parent, "tier"),
      demotions(&group, "demotions",
                "blocks demoted near -> far by policy"),
      promotions(&group, "promotions",
                 "blocks promoted far -> near for attention"),
      farBorn(&group, "far_born_blocks",
              "blocks allocated directly into the far tier"),
      migratedBytes(&group, "migrated_bytes",
                    "bytes moved between tiers"),
      streamedBytes(&group, "streamed_bytes",
                    "far KV bytes streamed for attention"),
      exposedSeconds(&group, "exposed_seconds",
                     "link seconds on the iteration critical path"),
      hiddenSeconds(&group, "hidden_seconds",
                    "link seconds hidden under compute by prefetch"),
      abandoned(&group, "abandoned_migrations",
                "migrations whose block was freed in flight"),
      pinViolations(&group, "pin_violations",
                    "forced demotions inside a pinned window")
{
}

void
ServeMetrics::enableTierStats()
{
    if (!tierStats_)
        tierStats_ = std::make_unique<TierStatBlock>(&group_);
}

void
ServeMetrics::noteTierIteration(const tier::TierIterationStats &iter,
                                const tier::TierStats &snap,
                                std::uint64_t abandoned_delta,
                                std::uint64_t pin_violation_delta)
{
    enableTierStats();
    tierDemotionsN_ += iter.demotions;
    tierPromotionsN_ += iter.promotions;
    tierFarBornN_ += iter.farBornBlocks;
    tierMigratedBytesN_ += iter.migratedBytes;
    tierStreamedBytesN_ += iter.streamedBytes;
    tierExposedSeconds_ += iter.exposedSeconds;
    tierHiddenSeconds_ += iter.hiddenSeconds;
    tierAbandonedN_ += abandoned_delta;
    tierPinViolationsN_ += pin_violation_delta;
    peakNearBlocks_ = std::max(peakNearBlocks_, snap.nearUsed());
    peakFarBlocks_ = std::max(peakFarBlocks_, snap.peakFarBlocks);

    tierStats_->demotions += static_cast<double>(iter.demotions);
    tierStats_->promotions += static_cast<double>(iter.promotions);
    tierStats_->farBorn += static_cast<double>(iter.farBornBlocks);
    tierStats_->migratedBytes +=
        static_cast<double>(iter.migratedBytes);
    tierStats_->streamedBytes +=
        static_cast<double>(iter.streamedBytes);
    tierStats_->exposedSeconds += iter.exposedSeconds;
    tierStats_->hiddenSeconds += iter.hiddenSeconds;
    tierStats_->abandoned += static_cast<double>(abandoned_delta);
    tierStats_->pinViolations +=
        static_cast<double>(pin_violation_delta);
}

ServeMetrics::OverloadStatBlock::OverloadStatBlock(
    stats::StatGroup *parent)
    : group(parent, "overload"),
      submitted(&group, "submitted", "requests offered to the system"),
      shed(&group, "shed",
           "requests dropped by deadline-aware shedding"),
      timedOut(&group, "timed_out",
               "queued requests dropped at their queue timeout"),
      throttled(&group, "throttled",
                "requests refused at the admission gate"),
      brownoutPeak(&group, "brownout_peak_level",
                   "highest brownout ladder level reached"),
      breakerOpens(&group, "breaker_opens",
                   "circuit-breaker Closed/HalfOpen -> Open trips")
{
}

void
ServeMetrics::enableOverloadStats()
{
    if (!overloadStats_)
        overloadStats_ = std::make_unique<OverloadStatBlock>(&group_);
}

void
ServeMetrics::noteSubmitted(std::uint64_t tenant)
{
    // Called on every submit, overload protection on or off; must not
    // lazily create the stat block or an off-mode run's stats dump
    // would grow a new sub-group.
    ++submittedN_;
    ++tenants_[tenant].submitted;
    if (overloadStats_)
        ++overloadStats_->submitted;
}

void
ServeMetrics::shedRequest(const ServeRequest &req, bool timed_out)
{
    enableOverloadStats();
    if (timed_out) {
        ++timedOutN_;
        ++tenants_[req.tenant].timedOut;
        ++overloadStats_->timedOut;
    } else {
        ++shedN_;
        ++tenants_[req.tenant].shed;
        ++overloadStats_->shed;
    }
}

void
ServeMetrics::throttleRequest(std::uint64_t tenant)
{
    enableOverloadStats();
    ++throttledN_;
    ++tenants_[tenant].throttled;
    ++overloadStats_->throttled;
}

void
ServeMetrics::noteBrownoutLevel(std::uint64_t level)
{
    enableOverloadStats();
    brownoutPeak_ = std::max(brownoutPeak_, level);
    overloadStats_->brownoutPeak.set(
        static_cast<double>(brownoutPeak_));
}

void
ServeMetrics::noteBreakerOpen()
{
    enableOverloadStats();
    ++breakerOpensN_;
    ++overloadStats_->breakerOpens;
}

ServeMetrics::DisaggStatBlock::DisaggStatBlock(stats::StatGroup *parent)
    : group(parent, "disagg"),
      chunkedPrefills(&group, "chunked_prefills",
                      "requests prefilled in more than one chunk"),
      chunkIterations(&group, "chunk_iterations",
                      "prefill-chunk steps executed"),
      handovers(&group, "handovers",
                "KV handovers from prefill to decode groups"),
      handoverBytes(&group, "handover_bytes",
                    "KV bytes handed over across the CXL link"),
      handoverLinkSeconds(&group, "handover_link_seconds",
                          "serialized link seconds spent on handovers")
{
}

void
ServeMetrics::enableDisaggStats()
{
    if (!disaggStats_)
        disaggStats_ = std::make_unique<DisaggStatBlock>(&group_);
}

void
ServeMetrics::noteChunkedPrefill()
{
    enableDisaggStats();
    ++chunkedPrefillsN_;
    ++disaggStats_->chunkedPrefills;
}

void
ServeMetrics::noteChunkIteration()
{
    enableDisaggStats();
    ++chunkIterationsN_;
    ++disaggStats_->chunkIterations;
}

void
ServeMetrics::noteHandover(std::uint64_t bytes, double link_seconds)
{
    enableDisaggStats();
    ++handoversN_;
    handoverBytesN_ += bytes;
    handoverLinkSeconds_ += link_seconds;
    ++disaggStats_->handovers;
    disaggStats_->handoverBytes += static_cast<double>(bytes);
    disaggStats_->handoverLinkSeconds += link_seconds;
}

void
ServeMetrics::sampleTokenLatency(double seconds, std::uint64_t tokens)
{
    for (std::uint64_t i = 0; i < tokens; ++i)
        tokenLatency_.sample(seconds);
}

void
ServeMetrics::sampleTtft(double seconds)
{
    ttft_.sample(seconds);
}

void
ServeMetrics::finishRequest(const ServeRequest &req)
{
    panic_if(req.state != RequestState::Finished,
             "finishRequest on a live request");
    ++completedStat_;
    ++completedN_;
    ++tenants_[req.tenant].completed;
    tokensStat_ += static_cast<double>(req.outputTokens);
    tokensN_ += req.outputTokens;

    // Mean inter-token gap after the first token; single-token
    // requests trivially meet the per-token deadline.
    const double decode_span = req.finishSeconds - req.firstTokenSeconds;
    const double mean_token = req.outputTokens > 1
        ? decode_span / static_cast<double>(req.outputTokens - 1)
        : 0.0;
    const bool slo_ok =
        (cfg_.sloTokenSeconds <= 0.0 ||
         mean_token <= cfg_.sloTokenSeconds) &&
        (cfg_.sloTtftSeconds <= 0.0 ||
         req.ttftSeconds() <= cfg_.sloTtftSeconds);
    if (slo_ok) {
        ++sloMetStat_;
        ++sloMetRequests_;
        sloMetTokens_ += req.outputTokens;
    }
}

void
ServeMetrics::rejectRequest()
{
    ++rejectedStat_;
    ++rejectedN_;
}

void
ServeMetrics::noteIterationFailure()
{
    ++iterFailStat_;
    ++iterFailN_;
}

void
ServeMetrics::noteRequestRetry()
{
    ++retryStat_;
    ++retryN_;
}

void
ServeMetrics::noteDegraded(double seconds)
{
    degradedStat_ += seconds;
    degradedSeconds_ += seconds;
}

void
ServeMetrics::failRequest()
{
    ++failedStat_;
    ++failedN_;
}

ServeReport
ServeMetrics::report(double makespan_seconds) const
{
    ServeReport r;
    r.completed = completedN_;
    r.rejected = rejectedN_;
    r.tokensGenerated = tokensN_;
    r.makespanSeconds = makespan_seconds;
    if (makespan_seconds > 0.0) {
        r.achievedQps = completedN_ / makespan_seconds;
        r.throughputTokensPerSec = tokensN_ / makespan_seconds;
        r.goodputTokensPerSec = sloMetTokens_ / makespan_seconds;
    }
    r.tokenLatencyP50 = tokenLatency_.percentile(0.50);
    r.tokenLatencyP95 = tokenLatency_.percentile(0.95);
    r.tokenLatencyP99 = tokenLatency_.percentile(0.99);
    r.ttftP50 = ttft_.percentile(0.50);
    r.ttftP95 = ttft_.percentile(0.95);
    r.ttftP99 = ttft_.percentile(0.99);
    r.meanBatchSize = batchSize_.mean();
    r.meanQueueDepth = queueDepth_.mean();
    r.peakKvUtilization = peakKvUtil_;
    if (kvIntervalSeconds_ > 0.0) {
        r.timeAvgKvUtilization =
            kvUtilSecondsIntegral_ / kvIntervalSeconds_;
        r.meanKvBlocksInUse =
            kvBlockSecondsIntegral_ / kvIntervalSeconds_;
    }
    r.prefixLookupBlocks = prefixLookupN_;
    r.prefixHitBlocks = prefixHitN_;
    r.sharedPrefixTokens = sharedTokensN_;
    // Token-granular so sub-block prefixes (served entirely by the
    // copy-on-write tail) still register as hits.
    r.prefixHitRate = sharedTokensN_
        ? static_cast<double>(cachedTokensN_) / sharedTokensN_
        : 0.0;
    r.cachedPrefixTokens = cachedTokensN_;
    r.cowCopies = cowN_;
    r.cacheEvictions = cacheEvictN_;
    r.preemptionsForCapacity = preemptN_;
    r.recomputeTokens = recomputeN_;
    r.peakKvBlocksInUse = peakKvBlocks_;
    r.kvFragmentation = kvFragmentation_.mean();
    r.tierDemotions = tierDemotionsN_;
    r.tierPromotions = tierPromotionsN_;
    r.tierFarBornBlocks = tierFarBornN_;
    r.tierMigratedBytes = tierMigratedBytesN_;
    r.tierStreamedBytes = tierStreamedBytesN_;
    r.tierExposedSeconds = tierExposedSeconds_;
    r.tierHiddenSeconds = tierHiddenSeconds_;
    r.tierAbandonedMigrations = tierAbandonedN_;
    r.tierPinViolations = tierPinViolationsN_;
    r.peakNearBlocksInUse = peakNearBlocks_;
    r.peakFarBlocksInUse = peakFarBlocks_;
    r.sloFraction = completedN_
        ? static_cast<double>(sloMetRequests_) / completedN_
        : 0.0;

    r.iterationFailures = iterFailN_;
    r.requestRetries = retryN_;
    r.requestsFailed = failedN_;
    r.degradedSeconds = degradedSeconds_;
    const double device_seconds =
        makespan_seconds * static_cast<double>(std::max<std::uint64_t>(
                               devicesN_, 1));
    r.availability = device_seconds > 0.0
        ? std::max(0.0, 1.0 - degradedSeconds_ / device_seconds)
        : 1.0;

    r.submitted = submittedN_;
    r.shedRequests = shedN_;
    r.timedOutRequests = timedOutN_;
    r.throttledRequests = throttledN_;
    // Inclusive SLO attainment: every terminal request counts in the
    // denominator, so shedding cannot inflate the figure the way the
    // completed-only sloFraction can.
    const std::uint64_t terminal = completedN_ + shedN_ + timedOutN_ +
        failedN_ + rejectedN_ + throttledN_;
    r.sloAttainment = terminal
        ? static_cast<double>(sloMetRequests_) / terminal
        : 0.0;
    r.servedFraction = submittedN_
        ? static_cast<double>(completedN_) / submittedN_
        : 0.0;
    r.brownoutPeakLevel = brownoutPeak_;
    r.breakerOpens = breakerOpensN_;
    r.chunkedPrefills = chunkedPrefillsN_;
    r.chunkIterations = chunkIterationsN_;
    r.handovers = handoversN_;
    r.handoverBytes = handoverBytesN_;
    r.handoverLinkSeconds = handoverLinkSeconds_;
    r.tenants.reserve(tenants_.size());
    for (const auto &[tenant, tc] : tenants_) {
        ServeReport::TenantBreakdown tb;
        tb.tenant = tenant;
        tb.submitted = tc.submitted;
        tb.completed = tc.completed;
        tb.shed = tc.shed;
        tb.timedOut = tc.timedOut;
        tb.throttled = tc.throttled;
        r.tenants.push_back(tb);
    }
    return r;
}

ServeMetrics::State
ServeMetrics::state() const
{
    State s;
    s.tokenLatency = tokenLatency_.state();
    s.ttft = ttft_.state();
    s.batchSize = batchSize_.state();
    s.queueDepth = queueDepth_.state();
    s.kvUtilization = kvUtilization_.state();
    s.kvFragmentation = kvFragmentation_.state();

    s.completed = completedN_;
    s.rejected = rejectedN_;
    s.tokens = tokensN_;
    s.sloMetRequests = sloMetRequests_;
    s.sloMetTokens = sloMetTokens_;
    s.iterFailures = iterFailN_;
    s.retries = retryN_;
    s.failed = failedN_;
    s.devices = devicesN_;
    s.degradedSeconds = degradedSeconds_;
    s.peakKvUtil = peakKvUtil_;

    s.kvUtilSecondsIntegral = kvUtilSecondsIntegral_;
    s.kvBlockSecondsIntegral = kvBlockSecondsIntegral_;
    s.kvIntervalSeconds = kvIntervalSeconds_;

    s.prefixLookups = prefixLookupN_;
    s.prefixHits = prefixHitN_;
    s.sharedTokens = sharedTokensN_;
    s.cachedTokens = cachedTokensN_;
    s.cowCopies = cowN_;
    s.cacheEvictions = cacheEvictN_;
    s.preemptions = preemptN_;
    s.recomputeTokens = recomputeN_;
    s.peakKvBlocks = peakKvBlocks_;

    s.tierEnabled = tierStats_ != nullptr;
    s.tierDemotions = tierDemotionsN_;
    s.tierPromotions = tierPromotionsN_;
    s.tierFarBorn = tierFarBornN_;
    s.tierMigratedBytes = tierMigratedBytesN_;
    s.tierStreamedBytes = tierStreamedBytesN_;
    s.tierExposedSeconds = tierExposedSeconds_;
    s.tierHiddenSeconds = tierHiddenSeconds_;
    s.tierAbandoned = tierAbandonedN_;
    s.tierPinViolations = tierPinViolationsN_;
    s.peakNearBlocks = peakNearBlocks_;
    s.peakFarBlocks = peakFarBlocks_;

    s.overloadEnabled = overloadStats_ != nullptr;
    s.submitted = submittedN_;
    s.shed = shedN_;
    s.timedOut = timedOutN_;
    s.throttled = throttledN_;
    s.brownoutPeak = brownoutPeak_;
    s.breakerOpens = breakerOpensN_;
    s.tenants.reserve(tenants_.size());
    for (const auto &[tenant, tc] : tenants_) {
        ServeReport::TenantBreakdown tb;
        tb.tenant = tenant;
        tb.submitted = tc.submitted;
        tb.completed = tc.completed;
        tb.shed = tc.shed;
        tb.timedOut = tc.timedOut;
        tb.throttled = tc.throttled;
        s.tenants.push_back(tb);
    }

    s.disaggEnabled = disaggStats_ != nullptr;
    s.chunkedPrefills = chunkedPrefillsN_;
    s.chunkIterations = chunkIterationsN_;
    s.handovers = handoversN_;
    s.handoverBytes = handoverBytesN_;
    s.handoverLinkSeconds = handoverLinkSeconds_;
    return s;
}

void
ServeMetrics::restore(const State &s)
{
    tokenLatency_.restore(s.tokenLatency);
    ttft_.restore(s.ttft);
    batchSize_.restore(s.batchSize);
    queueDepth_.restore(s.queueDepth);
    kvUtilization_.restore(s.kvUtilization);
    kvFragmentation_.restore(s.kvFragmentation);

    completedN_ = s.completed;
    rejectedN_ = s.rejected;
    tokensN_ = s.tokens;
    sloMetRequests_ = s.sloMetRequests;
    sloMetTokens_ = s.sloMetTokens;
    iterFailN_ = s.iterFailures;
    retryN_ = s.retries;
    failedN_ = s.failed;
    devicesN_ = s.devices;
    degradedSeconds_ = s.degradedSeconds;
    peakKvUtil_ = s.peakKvUtil;

    kvUtilSecondsIntegral_ = s.kvUtilSecondsIntegral;
    kvBlockSecondsIntegral_ = s.kvBlockSecondsIntegral;
    kvIntervalSeconds_ = s.kvIntervalSeconds;

    prefixLookupN_ = s.prefixLookups;
    prefixHitN_ = s.prefixHits;
    sharedTokensN_ = s.sharedTokens;
    cachedTokensN_ = s.cachedTokens;
    cowN_ = s.cowCopies;
    cacheEvictN_ = s.cacheEvictions;
    preemptN_ = s.preemptions;
    recomputeN_ = s.recomputeTokens;
    peakKvBlocks_ = s.peakKvBlocks;

    // The scalars mirror the counters at every accounting site, so
    // setting them from the counters reproduces the dumped values
    // bit for bit (integer-valued doubles; degraded is the same
    // double accumulation on both sides).
    completedStat_.set(static_cast<double>(completedN_));
    rejectedStat_.set(static_cast<double>(rejectedN_));
    tokensStat_.set(static_cast<double>(tokensN_));
    sloMetStat_.set(static_cast<double>(sloMetRequests_));
    iterFailStat_.set(static_cast<double>(iterFailN_));
    retryStat_.set(static_cast<double>(retryN_));
    failedStat_.set(static_cast<double>(failedN_));
    degradedStat_.set(degradedSeconds_);
    prefixHitStat_.set(static_cast<double>(prefixHitN_));
    prefixLookupStat_.set(static_cast<double>(prefixLookupN_));
    cachedTokenStat_.set(static_cast<double>(cachedTokensN_));
    sharedTokenStat_.set(static_cast<double>(sharedTokensN_));
    cowStat_.set(static_cast<double>(cowN_));
    cacheEvictStat_.set(static_cast<double>(cacheEvictN_));
    preemptStat_.set(static_cast<double>(preemptN_));
    recomputeStat_.set(static_cast<double>(recomputeN_));

    tierDemotionsN_ = s.tierDemotions;
    tierPromotionsN_ = s.tierPromotions;
    tierFarBornN_ = s.tierFarBorn;
    tierMigratedBytesN_ = s.tierMigratedBytes;
    tierStreamedBytesN_ = s.tierStreamedBytes;
    tierExposedSeconds_ = s.tierExposedSeconds;
    tierHiddenSeconds_ = s.tierHiddenSeconds;
    tierAbandonedN_ = s.tierAbandoned;
    tierPinViolationsN_ = s.tierPinViolations;
    peakNearBlocks_ = s.peakNearBlocks;
    peakFarBlocks_ = s.peakFarBlocks;
    if (s.tierEnabled) {
        enableTierStats();
        tierStats_->demotions.set(
            static_cast<double>(tierDemotionsN_));
        tierStats_->promotions.set(
            static_cast<double>(tierPromotionsN_));
        tierStats_->farBorn.set(static_cast<double>(tierFarBornN_));
        tierStats_->migratedBytes.set(
            static_cast<double>(tierMigratedBytesN_));
        tierStats_->streamedBytes.set(
            static_cast<double>(tierStreamedBytesN_));
        tierStats_->exposedSeconds.set(tierExposedSeconds_);
        tierStats_->hiddenSeconds.set(tierHiddenSeconds_);
        tierStats_->abandoned.set(
            static_cast<double>(tierAbandonedN_));
        tierStats_->pinViolations.set(
            static_cast<double>(tierPinViolationsN_));
    }

    submittedN_ = s.submitted;
    shedN_ = s.shed;
    timedOutN_ = s.timedOut;
    throttledN_ = s.throttled;
    brownoutPeak_ = s.brownoutPeak;
    breakerOpensN_ = s.breakerOpens;
    tenants_.clear();
    for (const ServeReport::TenantBreakdown &tb : s.tenants) {
        TenantCounters tc;
        tc.submitted = tb.submitted;
        tc.completed = tb.completed;
        tc.shed = tb.shed;
        tc.timedOut = tb.timedOut;
        tc.throttled = tb.throttled;
        tenants_[tb.tenant] = tc;
    }
    if (s.overloadEnabled) {
        enableOverloadStats();
        overloadStats_->submitted.set(
            static_cast<double>(submittedN_));
        overloadStats_->shed.set(static_cast<double>(shedN_));
        overloadStats_->timedOut.set(
            static_cast<double>(timedOutN_));
        overloadStats_->throttled.set(
            static_cast<double>(throttledN_));
        overloadStats_->brownoutPeak.set(
            static_cast<double>(brownoutPeak_));
        overloadStats_->breakerOpens.set(
            static_cast<double>(breakerOpensN_));
    }

    chunkedPrefillsN_ = s.chunkedPrefills;
    chunkIterationsN_ = s.chunkIterations;
    handoversN_ = s.handovers;
    handoverBytesN_ = s.handoverBytes;
    handoverLinkSeconds_ = s.handoverLinkSeconds;
    if (s.disaggEnabled) {
        enableDisaggStats();
        disaggStats_->chunkedPrefills.set(
            static_cast<double>(chunkedPrefillsN_));
        disaggStats_->chunkIterations.set(
            static_cast<double>(chunkIterationsN_));
        disaggStats_->handovers.set(
            static_cast<double>(handoversN_));
        disaggStats_->handoverBytes.set(
            static_cast<double>(handoverBytesN_));
        disaggStats_->handoverLinkSeconds.set(handoverLinkSeconds_);
    }
}

} // namespace serve
} // namespace cxlpnm
