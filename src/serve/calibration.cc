#include "serve/calibration.hh"

#include <algorithm>
#include <cinttypes>
#include <cmath>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "core/inference_engine.hh"

namespace cxlpnm
{
namespace serve
{

const char *
execModeName(ExecMode m)
{
    switch (m) {
    case ExecMode::Cycle:
        return "cycle";
    case ExecMode::Analytic:
        return "analytic";
    case ExecMode::Mixed:
        return "mixed";
    }
    return "?";
}

ExecMode
execModeByName(const std::string &name)
{
    if (name == "cycle")
        return ExecMode::Cycle;
    if (name == "analytic")
        return ExecMode::Analytic;
    if (name == "mixed")
        return ExecMode::Mixed;
    throw CalibrationError("unknown execution mode '" + name +
                           "' (want cycle, analytic or mixed)");
}

// ---- CyclePricer ----

CyclePricer::CyclePricer(const llm::ModelConfig &model,
                         const core::PnmPlatformConfig &pcfg,
                         const BatchCostModel &cost, int tensor_shard)
    : model_(model), pcfg_(pcfg), cost_(cost), shard_(tensor_shard)
{
    fatal_if(tensor_shard < 1, "bad tensor shard for cycle pricing");
}

double
CyclePricer::sumStage(std::uint64_t l) const
{
    auto it = sumMemo_.find(l);
    if (it != sumMemo_.end()) {
        ++memoHits_;
        return it->second;
    }
    const double s = core::pnmSumStageSeconds(model_, pcfg_, l, shard_);
    ++stageRuns_;
    sumMemo_.emplace(l, s);
    return s;
}

double
CyclePricer::genStage(std::uint64_t c) const
{
    auto it = genMemo_.find(c);
    if (it != genMemo_.end()) {
        ++memoHits_;
        return it->second;
    }
    const double s = core::pnmGenStageSeconds(model_, pcfg_, c, shard_);
    ++stageRuns_;
    genMemo_.emplace(c, s);
    return s;
}

double
CyclePricer::prefillSeconds(std::uint64_t l_in,
                            std::uint64_t cached_tokens) const
{
    const std::uint64_t computed =
        cached_tokens >= l_in ? 1 : l_in - cached_tokens;
    return sumStage(computed) + cost_.commPerIterationSeconds +
        cost_.commPerTokenSeconds * static_cast<double>(computed);
}

double
CyclePricer::decodeIterationSeconds(
    const std::vector<std::uint64_t> &contexts) const
{
    if (contexts.empty())
        return 0.0;
    const double batch = static_cast<double>(contexts.size());

    // The first member pays one full exact gen stage (the weights
    // stream once for the whole batch); every further member adds its
    // cycle-measured marginal cost over the minimal 2-token stage —
    // its own KV traffic as the engine actually times it.
    const auto ctx = [](std::uint64_t c) {
        return std::max<std::uint64_t>(2, c);
    };
    double mem = genStage(ctx(contexts[0]));
    if (contexts.size() > 1) {
        const double ref = genStage(2);
        for (std::size_t i = 1; i < contexts.size(); ++i)
            mem += std::max(0.0, genStage(ctx(contexts[i])) - ref);
    }
    const double compute = cost_.perTokenComputeSeconds * batch;
    return std::max(mem, compute) +
        cost_.perTokenHostSeconds * batch +
        cost_.commPerIterationSeconds + cost_.commPerTokenSeconds * batch;
}

// ---- calibration with held-out anchors ----

double
CalibrationProfile::maxRelErr() const
{
    double m = 0.0;
    for (const auto &a : anchors)
        m = std::max(m, a.relErr);
    return m;
}

CalibrationProfile
calibrateWithAnchors(const llm::ModelConfig &model,
                     const core::PnmPlatformConfig &pcfg,
                     std::uint64_t max_context, int tensor_shard)
{
    CalibrationProfile p;
    const std::uint64_t hi = std::clamp<std::uint64_t>(
        max_context, 4, model.maxPositions);
    p.modelName = model.name;
    p.channelGrouping = pcfg.channelGrouping;
    p.tensorShard = tensor_shard;
    p.maxContext = hi;
    p.cost = calibratePnmCostModel(model, pcfg, hi, tensor_shard);

    // The stock three-point sum curve is plenty for scheduling but
    // hopeless against a percent-level held-out validation: the
    // engine's sum stage is a *staircase* in ceil(l / peRows) - every
    // GEMM maps prompt rows onto the PE array in peRows-tall tiles -
    // and a sparse piecewise-linear fit interpolates straight across
    // the risers. Refit the sum curve sampling both sides of every
    // tile boundary (so the curve reproduces the steps) plus an
    // eighth-point grid (so it tracks the gentle slope within each
    // plateau). The gen line is genuinely linear and keeps its
    // two-point fit.
    {
        const std::uint64_t tile = static_cast<std::uint64_t>(
            std::max(1, pcfg.accel.peRows));
        std::vector<std::uint64_t> grid;
        for (int k = 1; k <= 8; ++k)
            grid.push_back(std::max<std::uint64_t>(
                1, (static_cast<std::uint64_t>(k) * hi) / 8));
        grid.push_back(1);
        for (std::uint64_t b = tile; b < hi; b += tile) {
            grid.push_back(b);
            grid.push_back(b + 1);
        }
        grid.push_back(hi);
        std::sort(grid.begin(), grid.end());
        grid.erase(std::unique(grid.begin(), grid.end()), grid.end());

        CostCurve dense;
        for (std::uint64_t l : grid)
            dense.addSample(l, core::pnmSumStageSeconds(model, pcfg, l,
                                                        tensor_shard));
        p.cost.sumCurve = dense;
    }

    // Held-out anchors: shapes the fit never saw. Sum stages validate
    // at odd sixteenth points between the eighth-point fit grid; gen
    // stages at the quarter points between the two-point line.
    auto add_anchor = [&](char kind, std::uint64_t tokens) {
        for (const auto &a : p.anchors)
            if (a.kind == kind && a.tokens == tokens)
                return;
        CalibrationAnchor a;
        a.kind = kind;
        a.tokens = tokens;
        if (kind == 's') {
            a.engineSeconds = core::pnmSumStageSeconds(model, pcfg,
                                                       tokens,
                                                       tensor_shard);
            a.modelSeconds = p.cost.sumCurve.at(tokens);
        } else {
            a.engineSeconds = core::pnmGenStageSeconds(model, pcfg,
                                                       tokens,
                                                       tensor_shard);
            a.modelSeconds = p.cost.genWeightSeconds +
                p.cost.genKvPerTokenSeconds *
                    static_cast<double>(tokens);
        }
        a.relErr = a.engineSeconds > 0.0
            ? std::abs(a.modelSeconds - a.engineSeconds) /
                a.engineSeconds
            : 0.0;
        p.anchors.push_back(a);
    };
    add_anchor('s', std::max<std::uint64_t>(1, (3 * hi) / 16));
    add_anchor('s', std::max<std::uint64_t>(1, (11 * hi) / 16));
    add_anchor('g', std::max<std::uint64_t>(2, hi / 4));
    add_anchor('g', std::max<std::uint64_t>(2, (3 * hi) / 4));
    return p;
}

// ---- profile (de)serialization ----

namespace
{

void
appendf(std::string &out, const char *fmt, ...)
{
    char buf[256];
    va_list ap;
    va_start(ap, fmt);
    std::vsnprintf(buf, sizeof buf, fmt, ap);
    va_end(ap);
    out += buf;
}

constexpr const char *kMagic = "cxlpnm-calibration-v1";

} // namespace

std::string
profileToText(const CalibrationProfile &p)
{
    std::string out;
    out += kMagic;
    out += '\n';
    appendf(out, "model %s\n", p.modelName.c_str());
    appendf(out, "channel_grouping %d\n", p.channelGrouping);
    appendf(out, "tensor_shard %d\n", p.tensorShard);
    appendf(out, "max_context %" PRIu64 "\n", p.maxContext);
    appendf(out, "gen_weight %.17g\n", p.cost.genWeightSeconds);
    appendf(out, "gen_kv_per_token %.17g\n",
            p.cost.genKvPerTokenSeconds);
    appendf(out, "per_token_compute %.17g\n",
            p.cost.perTokenComputeSeconds);
    appendf(out, "per_token_host %.17g\n", p.cost.perTokenHostSeconds);
    appendf(out, "comm_per_iteration %.17g\n",
            p.cost.commPerIterationSeconds);
    appendf(out, "comm_per_token %.17g\n", p.cost.commPerTokenSeconds);
    const auto &pts = p.cost.sumCurve.points();
    appendf(out, "sum_points %zu\n", pts.size());
    for (const auto &pt : pts)
        appendf(out, "%llu %.17g\n",
                static_cast<unsigned long long>(pt.tokens), pt.seconds);
    appendf(out, "anchors %zu\n", p.anchors.size());
    for (const auto &a : p.anchors)
        appendf(out, "%c %" PRIu64 " %.17g %.17g %.17g\n", a.kind,
                a.tokens, a.engineSeconds, a.modelSeconds, a.relErr);
    out += "end\n";
    return out;
}

namespace
{

/** Line cursor over the profile text; throws on premature end. */
struct LineReader
{
    const std::string &text;
    std::size_t pos = 0;

    std::string
    next()
    {
        if (pos >= text.size())
            throw CalibrationError(
                "calibration profile truncated");
        const std::size_t nl = text.find('\n', pos);
        const std::size_t end =
            nl == std::string::npos ? text.size() : nl;
        std::string line = text.substr(pos, end - pos);
        pos = nl == std::string::npos ? text.size() : nl + 1;
        return line;
    }
};

double
parseField(const std::string &line, const char *key)
{
    const std::string prefix = std::string(key) + " ";
    if (line.rfind(prefix, 0) != 0)
        throw CalibrationError("calibration profile: expected '" +
                               std::string(key) + "', got '" + line +
                               "'");
    char *end = nullptr;
    const double v = std::strtod(line.c_str() + prefix.size(), &end);
    if (end == line.c_str() + prefix.size())
        throw CalibrationError("calibration profile: bad value in '" +
                               line + "'");
    return v;
}

} // namespace

CalibrationProfile
profileFromText(const std::string &text)
{
    LineReader in{text};
    if (in.next() != kMagic)
        throw CalibrationError(
            "not a calibration profile (bad magic)");

    CalibrationProfile p;
    {
        const std::string line = in.next();
        if (line.rfind("model ", 0) != 0 || line.size() <= 6)
            throw CalibrationError(
                "calibration profile: missing model name");
        p.modelName = line.substr(6);
    }
    p.channelGrouping =
        static_cast<int>(parseField(in.next(), "channel_grouping"));
    p.tensorShard =
        static_cast<int>(parseField(in.next(), "tensor_shard"));
    p.maxContext = static_cast<std::uint64_t>(
        parseField(in.next(), "max_context"));
    p.cost.genWeightSeconds = parseField(in.next(), "gen_weight");
    p.cost.genKvPerTokenSeconds =
        parseField(in.next(), "gen_kv_per_token");
    p.cost.perTokenComputeSeconds =
        parseField(in.next(), "per_token_compute");
    p.cost.perTokenHostSeconds =
        parseField(in.next(), "per_token_host");
    p.cost.commPerIterationSeconds =
        parseField(in.next(), "comm_per_iteration");
    p.cost.commPerTokenSeconds =
        parseField(in.next(), "comm_per_token");

    const auto n_sum =
        static_cast<std::size_t>(parseField(in.next(), "sum_points"));
    for (std::size_t i = 0; i < n_sum; ++i) {
        unsigned long long tokens = 0;
        double seconds = 0.0;
        if (std::sscanf(in.next().c_str(), "%llu %lf", &tokens,
                        &seconds) != 2)
            throw CalibrationError(
                "calibration profile: bad sum-curve point");
        p.cost.sumCurve.addSample(tokens, seconds);
    }

    const auto n_anchor =
        static_cast<std::size_t>(parseField(in.next(), "anchors"));
    for (std::size_t i = 0; i < n_anchor; ++i) {
        CalibrationAnchor a;
        unsigned long long tokens = 0;
        if (std::sscanf(in.next().c_str(), "%c %llu %lf %lf %lf",
                        &a.kind, &tokens, &a.engineSeconds,
                        &a.modelSeconds, &a.relErr) != 5 ||
            (a.kind != 's' && a.kind != 'g'))
            throw CalibrationError(
                "calibration profile: bad anchor line");
        a.tokens = tokens;
        p.anchors.push_back(a);
    }
    if (in.next() != "end")
        throw CalibrationError(
            "calibration profile: missing end marker");
    return p;
}

void
saveProfile(const CalibrationProfile &p, const std::string &path)
{
    const std::string text = profileToText(p);
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (!f)
        throw CalibrationError("cannot write calibration profile '" +
                               path + "'");
    std::fwrite(text.data(), 1, text.size(), f);
    std::fclose(f);
}

CalibrationProfile
loadProfile(const std::string &path, const llm::ModelConfig &model,
            const core::PnmPlatformConfig &pcfg,
            std::uint64_t max_context, int tensor_shard)
{
    std::FILE *f = std::fopen(path.c_str(), "r");
    if (!f)
        throw CalibrationError("cannot read calibration profile '" +
                               path + "'");
    std::string text;
    char buf[4096];
    std::size_t n;
    while ((n = std::fread(buf, 1, sizeof buf, f)) > 0)
        text.append(buf, n);
    std::fclose(f);

    CalibrationProfile p = profileFromText(text);
    const std::uint64_t hi = std::clamp<std::uint64_t>(
        max_context, 4, model.maxPositions);
    if (p.modelName != model.name ||
        p.channelGrouping != pcfg.channelGrouping ||
        p.tensorShard != tensor_shard || p.maxContext != hi)
        throw CalibrationError(
            "calibration profile '" + path + "' was calibrated for " +
            p.modelName + " (grouping " +
            std::to_string(p.channelGrouping) + ", shard " +
            std::to_string(p.tensorShard) + ", context " +
            std::to_string(p.maxContext) + "), not this run");
    return p;
}

} // namespace serve
} // namespace cxlpnm
