/**
 * @file
 * Warm-state snapshot/restore for the serving stack.
 *
 * A fleet sweep repeats the same warmup (filling the batch, the paged
 * KV pool, the prefix cache, the tier ledger) at every operating
 * point. A ServingSnapshot captures the complete mutable state of a
 * warm serving stack between iterations - every scheduler group, the
 * metrics collector, and (when attached) the fault injector, tracer,
 * and request generator - so later runs restore it and continue as if
 * never interrupted: the contract is *byte-identical* continuation
 * (stats dump, trace JSON, fault log, KV/tier ledgers) versus the
 * uninterrupted run, which tests/test_snapshot verifies.
 *
 * Configuration is deliberately NOT captured: a snapshot restores onto
 * a stack rebuilt with the same model, cost model, scheduler config,
 * and capacities (component restore methods fatal on structural
 * mismatches; the text loader throws SnapshotError on malformed or
 * truncated input). Snapshots serialize to a deterministic text form -
 * identical state produces identical bytes - so snapshot files can be
 * diffed and checksummed like the other determinism artifacts.
 */

#ifndef CXLPNM_SERVE_SNAPSHOT_HH
#define CXLPNM_SERVE_SNAPSHOT_HH

#include <string>
#include <vector>

#include "serve/dispatcher.hh"
#include "serve/metrics.hh"
#include "serve/request_generator.hh"
#include "serve/scheduler.hh"
#include "sim/fault.hh"
#include "sim/logging.hh"
#include "sim/trace.hh"

namespace cxlpnm
{
namespace serve
{

/**
 * A snapshot that cannot be used: malformed or truncated file,
 * unwritable path. Thrown instead of a fatal so drivers can print a
 * message and exit cleanly (the same contract as TraceConfigError and
 * CalibrationError).
 */
class SnapshotError : public FatalError
{
  public:
    using FatalError::FatalError;
};

/** The serving stack's full warm state. Optional sections cover the
 *  attachments a driver may or may not have wired. */
struct ServingSnapshot
{
    /** One entry per scheduler (dispatcher group order). */
    std::vector<SchedulerState> groups;
    ServeMetrics::State metrics;

    bool hasFaults = false;
    fault::FaultInjector::State faults;

    bool hasTrace = false;
    trace::Tracer::State trace;

    bool hasGenerator = false;
    RequestGenerator::State generator;

    /** Dispatcher front door (admission buckets, breakers, refused
     *  requests); v2+ snapshots only. */
    bool hasOverload = false;
    ApplianceDispatcher::OverloadState overload;

    /** Disaggregated prefill/decode handover accounting (cumulative
     *  CXL-link traffic); v3 snapshots only. */
    bool hasDisagg = false;
    ApplianceDispatcher::DisaggState disagg;
};

/** Deterministic text form (identical snapshots, identical bytes). */
std::string snapshotToText(const ServingSnapshot &s);

/**
 * Render @p s at an explicit format version (1, 2, or 3). Version 3
 * is what snapshotToText emits; version 2 reproduces the
 * pre-disaggregation format (no prefilled-token request field, no
 * handoff/disagg sections) and version 1 the pre-overload format (no
 * tenant/deadline request fields, no shed/brownout/overload sections)
 * so compatibility tests can fabricate older documents from live
 * state. Throws SnapshotError on an unsupported version.
 */
std::string renderSnapshot(const ServingSnapshot &s, int version);

/** Parse snapshotToText output; throws SnapshotError on anything
 *  malformed or truncated. */
ServingSnapshot snapshotFromText(const std::string &text);

/** Write/read a snapshot file; throws SnapshotError on I/O or parse
 *  failure. */
void saveSnapshot(const ServingSnapshot &s, const std::string &path);
ServingSnapshot loadSnapshot(const std::string &path);

} // namespace serve
} // namespace cxlpnm

#endif // CXLPNM_SERVE_SNAPSHOT_HH
