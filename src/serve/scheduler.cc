#include "serve/scheduler.hh"

#include <algorithm>
#include <string>

#include "sim/logging.hh"

namespace cxlpnm
{
namespace serve
{

const char *
requestStateName(RequestState s)
{
    switch (s) {
      case RequestState::Queued: return "queued";
      case RequestState::Running: return "running";
      case RequestState::Finished: return "finished";
      case RequestState::Rejected: return "rejected";
      case RequestState::Failed: return "failed";
    }
    return "<bad>";
}

BatchScheduler::BatchScheduler(const llm::ModelConfig &model,
                               const BatchCostModel &cost,
                               std::uint64_t kv_capacity_bytes,
                               const SchedulerConfig &cfg,
                               ServeMetrics &metrics)
    : model_(model), cost_(cost), kv_(kv_capacity_bytes), cfg_(cfg),
      metrics_(metrics)
{
    fatal_if(cfg_.maxBatch == 0, "batch cap must be positive");
    metrics_.registerDevice();
}

void
BatchScheduler::attachTracer(trace::Tracer *t, const std::string &prefix)
{
    tracer_ = t;
    if (t == nullptr)
        return;
    iterTrack_ = t->track(prefix + ".iterations", "serve");
    reqTrack_ = t->track(prefix + ".requests", "serve");
    queueTrack_ = t->track(prefix + ".queue_depth", "serve");
    kvTrack_ = t->track(prefix + ".kv_utilization", "serve");
    batchTrack_ = t->track(prefix + ".batch_size", "serve");
}

void
BatchScheduler::submit(ServeRequest req)
{
    fatal_if(req.arrivalSeconds < lastArrival_,
             "submissions must come in arrival order");
    lastArrival_ = req.arrivalSeconds;

    const bool malformed = req.inputTokens == 0 ||
        req.outputTokens == 0 ||
        req.inputTokens + req.outputTokens > model_.maxPositions;
    if (malformed || req.worstCaseKvBytes(model_) > kv_.capacityBytes()) {
        req.state = RequestState::Rejected;
        if (tracer_ != nullptr)
            tracer_->instant(reqTrack_,
                             "reject#" + std::to_string(req.id),
                             secondsToTicks(req.arrivalSeconds));
        rejected_.push_back(req);
        metrics_.rejectRequest();
        return;
    }
    if (tracer_ != nullptr)
        tracer_->instant(reqTrack_, "arrive#" + std::to_string(req.id),
                         secondsToTicks(req.arrivalSeconds));
    queue_.push_back(req);
}

void
BatchScheduler::admit(std::vector<ServeRequest> &joining)
{
    while (!queue_.empty()) {
        // Serial baseline: one request owns the device end to end.
        if (!cfg_.continuousBatching &&
            (!batch_.empty() || !joining.empty()))
            return;
        if (batch_.size() + joining.size() >= cfg_.maxBatch)
            return;

        ServeRequest &head = queue_.front();
        if (head.arrivalSeconds > clock_)
            return; // not here yet
        if (!kv_.canReserve(head.worstCaseKvBytes(model_)))
            return; // head-of-line blocks until KV frees up

        kv_.reserve(head.worstCaseKvBytes(model_));
        head.state = RequestState::Running;
        head.admitSeconds = clock_;
        if (tracer_ != nullptr)
            tracer_->instant(reqTrack_,
                             "admit#" + std::to_string(head.id),
                             secondsToTicks(clock_));
        joining.push_back(head);
        queue_.pop_front();
    }
}

bool
BatchScheduler::step()
{
    std::vector<ServeRequest> joining;
    admit(joining);

    // Idle: fast-forward to the next arrival and try again.
    if (batch_.empty() && joining.empty()) {
        if (queue_.empty())
            return false;
        clock_ = std::max(clock_, queue_.front().arrivalSeconds);
        admit(joining);
        if (joining.empty())
            return false;
    }

    const double iter_start = clock_;

    // Iteration cost: joiners pay their prefill, everyone already in
    // the batch decodes one token against their current context.
    double cost = 0.0;
    for (const ServeRequest &r : joining)
        cost += cost_.prefillSeconds(r.inputTokens);
    std::vector<std::uint64_t> contexts;
    contexts.reserve(batch_.size());
    for (const ServeRequest &r : batch_)
        contexts.push_back(r.contextTokens() + 1); // token being made
    cost += cost_.decodeIterationSeconds(contexts);
    clock_ += cost;

    // The iteration's work can be lost to an injected fault; the time
    // it burned still passed.
    if (faultSite_ != nullptr &&
        faultSite_->poll(secondsToTicks(clock_)) ==
            fault::FaultKind::IterationFail) {
        if (tracer_ != nullptr) {
            tracer_->complete(iterTrack_, "iter_failed",
                              secondsToTicks(iter_start),
                              secondsToTicks(clock_));
            tracer_->instant(iterTrack_, "iteration_fault",
                             secondsToTicks(clock_));
        }
        failIteration(joining);
        return true;
    }

    // Prefill produced each joiner's first token. A request restarted
    // after a failed iteration keeps its original first-token time (and
    // its TTFT was already sampled).
    for (ServeRequest &r : joining) {
        r.generated = 1;
        if (r.firstTokenSeconds < 0.0) {
            r.firstTokenSeconds = clock_;
            metrics_.sampleTtft(r.ttftSeconds());
        }
        if (tracer_ != nullptr)
            tracer_->instant(reqTrack_,
                             "first_token#" + std::to_string(r.id),
                             secondsToTicks(clock_));
    }
    // Decoding members each produced one more token; their token
    // latency is the whole iteration (prefill interference included).
    for (ServeRequest &r : batch_) {
        ++r.generated;
        metrics_.sampleTokenLatency(cost);
        if (tracer_ != nullptr)
            tracer_->instant(reqTrack_,
                             "token#" + std::to_string(r.id),
                             secondsToTicks(clock_));
    }

    const std::size_t iter_batch = batch_.size() + joining.size();
    batch_.insert(batch_.end(), joining.begin(), joining.end());

    // Retire finished members immediately; their KV frees now.
    std::vector<ServeRequest> still_running;
    still_running.reserve(batch_.size());
    for (ServeRequest &r : batch_) {
        if (r.generated >= r.outputTokens) {
            r.state = RequestState::Finished;
            r.finishSeconds = clock_;
            kv_.release(r.worstCaseKvBytes(model_));
            if (tracer_ != nullptr)
                tracer_->instant(reqTrack_,
                                 "retire#" + std::to_string(r.id),
                                 secondsToTicks(clock_));
            metrics_.finishRequest(r);
            finished_.push_back(r);
        } else {
            still_running.push_back(r);
        }
    }
    batch_ = std::move(still_running);

    metrics_.sampleIteration(iter_batch, queue_.size(),
                             kv_.utilization());
    if (tracer_ != nullptr) {
        const Tick end = secondsToTicks(clock_);
        tracer_->complete(iterTrack_, "iter",
                          secondsToTicks(iter_start), end);
        tracer_->counter(queueTrack_, end,
                         static_cast<double>(queue_.size()));
        tracer_->counter(kvTrack_, end, kv_.utilization());
        tracer_->counter(batchTrack_, end,
                         static_cast<double>(iter_batch));
    }
    return true;
}

void
BatchScheduler::failIteration(std::vector<ServeRequest> &joining)
{
    metrics_.noteIterationFailure();

    // Recovery dead time (device reset + reload as the serving layer
    // sees it); the dispatcher routes new arrivals around this window.
    const double degraded_from = clock_;
    clock_ += cfg_.ras.degradedCooldownSeconds;
    degradedUntil_ = clock_;
    metrics_.noteDegraded(cfg_.ras.degradedCooldownSeconds);
    if (tracer_ != nullptr)
        tracer_->complete(iterTrack_, "degraded",
                          secondsToTicks(degraded_from),
                          secondsToTicks(degradedUntil_));

    // Everyone in the iteration loses their progress: KV state is
    // gone, so survivors restart from their prompt. Relative order is
    // preserved at the head of the queue.
    std::vector<ServeRequest> members;
    members.reserve(batch_.size() + joining.size());
    members.insert(members.end(), batch_.begin(), batch_.end());
    members.insert(members.end(), joining.begin(), joining.end());
    batch_.clear();

    for (auto it = members.rbegin(); it != members.rend(); ++it) {
        ServeRequest r = *it;
        kv_.release(r.worstCaseKvBytes(model_));
        r.generated = 0;
        ++r.retries;
        if (r.retries > cfg_.ras.maxRequestRetries) {
            r.state = RequestState::Failed;
            r.finishSeconds = clock_;
            if (tracer_ != nullptr)
                tracer_->instant(reqTrack_,
                                 "fail#" + std::to_string(r.id),
                                 secondsToTicks(clock_));
            metrics_.failRequest();
            failed_.push_back(r);
            continue;
        }
        metrics_.noteRequestRetry();
        r.state = RequestState::Queued;
        if (tracer_ != nullptr)
            tracer_->instant(reqTrack_,
                             "requeue#" + std::to_string(r.id),
                             secondsToTicks(clock_));
        queue_.push_front(r);
    }
}

void
BatchScheduler::advanceTo(double t)
{
    while (clock_ < t) {
        const bool startable = !batch_.empty() ||
            (!queue_.empty() && queue_.front().arrivalSeconds <= t);
        if (!startable || !step())
            break;
    }
}

void
BatchScheduler::drain()
{
    while (step()) {
    }
    panic_if(!queue_.empty() || !batch_.empty(),
             "drain left requests behind");
    // Every reserve must have been paired with exactly one release by
    // now (retire, or the requeue/Failed fault path): a non-zero
    // residue here is a KV accounting leak or double-release.
    panic_if(kv_.reservedBytes() != 0, "drain left ",
             kv_.reservedBytes(), " KV bytes reserved with no request "
             "in flight");
}

std::uint64_t
BatchScheduler::outstandingTokens() const
{
    std::uint64_t total = 0;
    for (const ServeRequest &r : queue_)
        total += r.inputTokens + r.outputTokens;
    for (const ServeRequest &r : batch_)
        total += r.remainingTokens();
    return total;
}

} // namespace serve
} // namespace cxlpnm
