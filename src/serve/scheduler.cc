#include "serve/scheduler.hh"

#include <algorithm>
#include <string>

#include "serve/breaker.hh"
#include "serve/calibration.hh"
#include "sim/logging.hh"

namespace cxlpnm
{
namespace serve
{

const char *
requestStateName(RequestState s)
{
    switch (s) {
      case RequestState::Queued: return "queued";
      case RequestState::Running: return "running";
      case RequestState::Finished: return "finished";
      case RequestState::Rejected: return "rejected";
      case RequestState::Failed: return "failed";
      case RequestState::Shed: return "shed";
    }
    return "<bad>";
}

namespace
{

/** Admission priority: earlier arrival wins, ids break ties. */
bool
fcfsBefore(const ServeRequest &a, const ServeRequest &b)
{
    return a.arrivalSeconds < b.arrivalSeconds ||
        (a.arrivalSeconds == b.arrivalSeconds && a.id < b.id);
}

} // namespace

BatchScheduler::BatchScheduler(const llm::ModelConfig &model,
                               const BatchCostModel &cost,
                               std::uint64_t kv_capacity_bytes,
                               const SchedulerConfig &cfg,
                               ServeMetrics &metrics)
    : model_(model), cost_(cost), kv_(kv_capacity_bytes), cfg_(cfg),
      metrics_(metrics), brownout_(cfg.brownout)
{
    fatal_if(cfg_.maxBatch == 0, "batch cap must be positive");
    if (cfg_.shed.enabled)
        cfg_.shed.validate();
    if (cfg_.shed.enabled || cfg_.brownout.enabled)
        metrics_.enableOverloadStats();
    if (cfg_.chunkTokens > 0)
        metrics_.enableDisaggStats();
    fatal_if(cfg_.paged.tier.enabled() && !cfg_.paged.enabled,
             "the far KV tier requires the paged backend "
             "(paged.enabled)");
    if (cfg_.paged.enabled) {
        fatal_if(cfg_.paged.blockTokens == 0,
                 "paged KV needs a positive block size");
        const std::uint64_t block_bytes =
            model_.kvCacheBytes(cfg_.paged.blockTokens);
        // The far tier extends the manager's block-ID space: one dense
        // range over both tiers keeps refcounts, the prefix cache, and
        // held-block lists oblivious to residency.
        const std::uint64_t far_bytes =
            cfg_.paged.tier.farBlocks * block_bytes;
        blockMgr_ = std::make_unique<KvBlockManager>(
            kv_capacity_bytes + far_bytes, block_bytes);
        prefixCache_ = std::make_unique<PrefixCache>(*blockMgr_);
        if (cfg_.paged.tier.enabled()) {
            const std::uint64_t near_blocks =
                blockMgr_->totalBlocks() - cfg_.paged.tier.farBlocks;
            fatal_if(near_blocks == 0, "near KV capacity ",
                     kv_capacity_bytes, " bytes smaller than one ",
                     block_bytes, "-byte block");
            tierPool_ = std::make_unique<tier::TieredBlockPool>(
                *blockMgr_, near_blocks);
            tierPolicy_ = tier::makeTierPolicy(cfg_.paged.tier);
            migration_ = std::make_unique<tier::MigrationEngine>(
                *tierPool_, cfg_.paged.tier, block_bytes,
                model_.numLayers);
            blockMeta_.assign(blockMgr_->totalBlocks(),
                              tier::TierBlockMeta{});
            // A prefix-cache block mid-migration must survive
            // eviction: the transfer still owns its frame.
            prefixCache_->setEvictGuard([this](BlockId b) {
                return !tierPool_->inFlight(b);
            });
            metrics_.enableTierStats();
        }
    }
    metrics_.registerDevice();
}

void
BatchScheduler::attachTracer(trace::Tracer *t, const std::string &prefix)
{
    tracer_ = t;
    if (t == nullptr)
        return;
    iterTrack_ = t->track(prefix + ".iterations", "serve");
    reqTrack_ = t->track(prefix + ".requests", "serve");
    queueTrack_ = t->track(prefix + ".queue_depth", "serve");
    kvTrack_ = t->track(prefix + ".kv_utilization", "serve");
    batchTrack_ = t->track(prefix + ".batch_size", "serve");
    // Paged-only tracks register last, so with paging off the track
    // set - and hence every emitted byte - matches the byte-pool-only
    // scheduler exactly.
    if (cfg_.paged.enabled) {
        blocksTrack_ = t->track(prefix + ".kv_blocks", "serve");
        prefixTrack_ = t->track(prefix + ".prefix_cache", "serve");
    }
    // Tier tracks after the paged ones, same contract: with the far
    // tier off nothing registers and the emitted bytes are unchanged.
    if (tiered()) {
        tierTrack_ = t->track(prefix + ".kv_tier", "serve");
        nearTrack_ = t->track(prefix + ".kv_near_blocks", "serve");
        farTrack_ = t->track(prefix + ".kv_far_blocks", "serve");
        migration_->attachTracer(t, tierTrack_);
    }
    // Brownout-ladder counter last, only when the ladder is on: off
    // means the track set (and every emitted byte) is unchanged.
    if (cfg_.brownout.enabled)
        brownoutTrack_ = t->track(prefix + ".brownout_level", "serve");
}

void
BatchScheduler::submit(ServeRequest req)
{
    fatal_if(req.arrivalSeconds < lastArrival_,
             "submissions must come in arrival order");
    fatal_if(req.sharedPrefixTokens > req.inputTokens,
             "shared prefix longer than the prompt");
    lastArrival_ = req.arrivalSeconds;
    metrics_.noteSubmitted(req.tenant);

    const bool malformed = req.inputTokens == 0 ||
        req.outputTokens == 0 ||
        req.inputTokens + req.outputTokens > model_.maxPositions;
    bool too_big;
    if (cfg_.paged.enabled) {
        // Worst case in blocks: the full context, rounded up.
        const std::uint64_t b = cfg_.paged.blockTokens;
        const std::uint64_t worst =
            (req.inputTokens + req.outputTokens + b - 1) / b;
        too_big = worst > blockMgr_->totalBlocks();
    } else {
        too_big = req.worstCaseKvBytes(model_) > kv_.capacityBytes();
    }
    if (malformed || too_big) {
        req.state = RequestState::Rejected;
        if (tracer_ != nullptr)
            tracer_->instant(reqTrack_,
                             "reject#" + std::to_string(req.id),
                             secondsToTicks(req.arrivalSeconds));
        rejected_.push_back(req);
        metrics_.rejectRequest();
        return;
    }
    if (tracer_ != nullptr)
        tracer_->instant(reqTrack_, "arrive#" + std::to_string(req.id),
                         secondsToTicks(req.arrivalSeconds));
    queue_.push_back(req);
}

void
BatchScheduler::submitContinuation(ServeRequest req)
{
    // Handovers from different prefill groups need not reach a decode
    // group in global arrival order; keep the FCFS queue sorted
    // instead of insisting on monotone submissions. The front-door
    // validity checks and the submission metric already ran when the
    // request entered its prefill group.
    if (req.arrivalSeconds > lastArrival_)
        lastArrival_ = req.arrivalSeconds;
    req.state = RequestState::Queued;
    if (tracer_ != nullptr)
        tracer_->instant(reqTrack_, "handin#" + std::to_string(req.id),
                         secondsToTicks(req.arrivalSeconds));
    requeueFcfs(std::move(req));
}

std::vector<ServeRequest>
BatchScheduler::takeHandoffs()
{
    std::vector<ServeRequest> out = std::move(handoffs_);
    handoffs_.clear();
    return out;
}

BlockId
BatchScheduler::allocateBlock()
{
    BlockId b = blockMgr_->tryAllocate();
    while (b == InvalidBlock && prefixCache_->evictOne()) {
        metrics_.noteCacheEvictions(1);
        if (tracer_ != nullptr)
            tracer_->instant(prefixTrack_, "evict",
                             secondsToTicks(clock_));
        b = blockMgr_->tryAllocate();
    }
    if (b != InvalidBlock && tiered())
        placeTiered(b);
    return b;
}

tier::TierPolicyContext
BatchScheduler::policyContext() const
{
    return tier::TierPolicyContext{
        *tierPool_, blockMeta_,
        [this](std::uint64_t owner) -> std::uint64_t {
            auto it = heldBlocks_.find(owner);
            return it == heldBlocks_.end() ? 0 : it->second.size();
        }};
}

void
BatchScheduler::placeTiered(BlockId b)
{
    blockMeta_[b] = tier::TierBlockMeta{};
    blockMeta_[b].lastTouch = iterationSeq_;
    if (tierPool_->nearFree() > 0) {
        tierPool_->placeNear(b);
        return;
    }
    // Near is full. A full near tier with a block still allocatable
    // means the far tier has a free slot (near + far frames bound the
    // manager's block count), so either the policy vacates a frame
    // for the newcomer or the newcomer itself is born far.
    const tier::TierPolicyContext ctx = policyContext();
    const BlockId victim = tierPolicy_->selectDemotion(ctx);
    if (victim != InvalidBlock) {
        migration_->demote(victim);
        tierPool_->placeNear(b);
    } else {
        tierPool_->placeFar(b);
        migration_->noteFarBorn(b);
    }
}

void
BatchScheduler::assignChainMeta(std::uint64_t id,
                                const std::vector<BlockId> &blocks)
{
    for (std::size_t i = 0; i < blocks.size(); ++i) {
        tier::TierBlockMeta &m = blockMeta_[blocks[i]];
        m.owner = id;
        m.chainPos = static_cast<std::uint32_t>(i);
        m.writeHead = i + 1 == blocks.size();
        m.lastTouch = iterationSeq_;
    }
}

void
BatchScheduler::releaseBlocks(const ServeRequest &req)
{
    if (!cfg_.paged.enabled)
        return;
    auto it = heldBlocks_.find(req.id);
    if (it == heldBlocks_.end())
        return;
    for (BlockId b : it->second) {
        if (tiered()) {
            // Blocks surviving through prefix-cache refs lose their
            // owner (policy treats them as pure capacity); freed
            // blocks drop residency via the manager's observer.
            tier::TierBlockMeta &m = blockMeta_[b];
            if (m.owner == req.id) {
                m.owner = tier::TierBlockMeta::NoOwner;
                m.writeHead = false;
            }
        }
        blockMgr_->release(b);
    }
    heldBlocks_.erase(it);
}

bool
BatchScheduler::tryAdmitPaged(ServeRequest &head)
{
    const std::uint64_t B = cfg_.paged.blockTokens;

    std::vector<std::uint64_t> keys;
    PrefixCache::Match match;
    std::vector<BlockId> blocks;
    std::uint64_t cached = 0;
    bool cow = false;
    const bool shared = cfg_.paged.prefixCaching &&
        head.sharedPrefixTokens > 0;

    auto rollback = [&]() {
        for (BlockId b : blocks)
            blockMgr_->release(b);
        return false;
    };

    if (shared) {
        keys = head.sharedBlockKeys(B);
        match = prefixCache_->lookup(keys, head.sharedPartialTokens(B),
                                     head.sharedBlockKey(keys.size()));
        blocks = match.blocks; // ref'd for us by lookup
        cached = blocks.size() * B;
        if (match.partialTokens > 0) {
            // Copy-on-write: the cached partial tail is copied into a
            // private block that will also hold our unique tokens.
            const BlockId b = allocateBlock();
            if (b == InvalidBlock)
                return rollback();
            blocks.push_back(b);
            cached += match.partialTokens;
            cow = true;
        }
    }

    // Blocks for the whole prompt plus the first decoded token.
    const std::uint64_t needed = (head.inputTokens + 1 + B - 1) / B;
    while (blocks.size() < needed) {
        const BlockId b = allocateBlock();
        if (b == InvalidBlock)
            return rollback();
        blocks.push_back(b);
    }

    // Success: account the lookup, publish our shared blocks so later
    // group members (and re-admissions) hit them.
    if (shared) {
        metrics_.notePrefixLookup(keys.size(), match.blocks.size(),
                                  head.sharedPrefixTokens, cached);
        if (cow) {
            metrics_.noteCowCopy();
            if (tracer_ != nullptr)
                tracer_->instant(prefixTrack_,
                                 "cow#" + std::to_string(head.id),
                                 secondsToTicks(clock_));
        }
        if (tracer_ != nullptr)
            tracer_->instant(prefixTrack_,
                             (cached > 0 ? "hit#" : "miss#") +
                                 std::to_string(head.id),
                             secondsToTicks(clock_));
        const std::uint64_t partial = head.sharedPartialTokens(B);
        const BlockId donor = partial > 0 && !cow
            ? blocks[keys.size()]
            : InvalidBlock;
        prefixCache_->insert(keys, blocks, partial,
                             head.sharedBlockKey(keys.size()), donor);
    }

    head.cachedPrefixTokens = cached;
    auto &held = heldBlocks_[head.id];
    held = std::move(blocks);
    if (tiered())
        assignChainMeta(head.id, held);
    metrics_.notePeakKvBlocks(blockMgr_->stats().usedBlocks);
    return true;
}

void
BatchScheduler::admit(std::vector<ServeRequest> &joining)
{
    const std::uint64_t batch_cap = brownout_.batchCap(cfg_.maxBatch);
    const std::uint64_t ctx_cap =
        brownout_.contextCap(model_.maxPositions);
    auto admitHead = [&](std::size_t idx) -> bool {
        ServeRequest &head = queue_[idx];
        if (cfg_.paged.enabled) {
            if (!tryAdmitPaged(head))
                return false;
        } else if (!kv_.tryReserve(head.worstCaseKvBytes(model_))) {
            return false;
        }
        head.state = RequestState::Running;
        head.admitSeconds = clock_;
        // Chunked prefill: cached prompt tokens are already resident,
        // so chunking starts behind them. A prompt whose uncached
        // remainder exceeds the budget will take several iterations.
        if (cfg_.chunkTokens > 0 && head.generated == 0) {
            head.prefilledTokens = head.cachedPrefixTokens;
            if (head.inputTokens - head.prefilledTokens >
                cfg_.chunkTokens)
                metrics_.noteChunkedPrefill();
        }
        if (tracer_ != nullptr)
            tracer_->instant(reqTrack_,
                             "admit#" + std::to_string(head.id),
                             secondsToTicks(clock_));
        joining.push_back(head);
        queue_.erase(queue_.begin() +
                     static_cast<std::ptrdiff_t>(idx));
        return true;
    };
    constexpr std::size_t kNoSkip = static_cast<std::size_t>(-1);
    std::size_t first_skip = kNoSkip;
    std::size_t i = 0;
    while (i < queue_.size()) {
        // Serial baseline: one request owns the device end to end.
        if (!cfg_.continuousBatching &&
            (!batch_.empty() || !joining.empty()))
            return;
        if (batch_.size() + joining.size() >= batch_cap)
            return;

        ServeRequest &head = queue_[i];
        if (head.arrivalSeconds > clock_)
            return; // not here yet (FCFS order: nor is anything later)
        // Brownout: while the ladder is up, requests over the context
        // cap are skipped in place - not shed - relaxing strict FCFS
        // only under sustained pressure (i stays 0 at level 0, so
        // full service is exactly the head-only loop).
        if (brownout_.level() > 0 &&
            head.inputTokens + head.outputTokens > ctx_cap) {
            if (first_skip == kNoSkip)
                first_skip = i;
            ++i;
            continue;
        }
        // Deadline-aware shedding: when the head's first token cannot
        // land inside its TTFT deadline even by the cheapest estimate,
        // admitting it only converts capacity into a guaranteed SLO
        // miss - shed it instead. A handed-over continuation already
        // served its first token on the prefill group, so its TTFT
        // deadline is settled.
        if (cfg_.shed.enabled && head.deadlineSeconds > 0.0 &&
            !handedOver(head) &&
            estimateTtftSeconds(head) * cfg_.shed.estimateMargin >
                head.deadlineSeconds) {
            ServeRequest gone = std::move(head);
            queue_.erase(queue_.begin() +
                         static_cast<std::ptrdiff_t>(i));
            shedRequest(std::move(gone), false);
            continue;
        }
        // Strict FCFS: only ever the (possibly brownout-advanced)
        // head; when it does not fit, admission stops even if a later
        // request would.
        if (!admitHead(i))
            return; // head-of-line blocks until KV/blocks free up
    }
    // Progress guarantee: a sustained max-level brownout must not
    // wedge the group. If the context cap skipped every arrived
    // request while nothing at all is running, admit the first
    // skipped one anyway - degraded (serial) service beats none.
    if (joining.empty() && batch_.empty() && first_skip != kNoSkip)
        admitHead(first_skip);
}

std::size_t
BatchScheduler::shedExpired()
{
    if (!cfg_.shed.enabled)
        return 0;
    std::size_t dropped = 0;
    for (std::size_t i = 0; i < queue_.size();) {
        ServeRequest &r = queue_[i];
        if (r.arrivalSeconds > clock_)
            break; // FCFS order: nothing later has arrived yet
        // A handed-over continuation's first token already landed on
        // the prefill group; its TTFT deadline cannot be blown here.
        if (handedOver(r)) {
            ++i;
            continue;
        }
        const double waited = clock_ - r.arrivalSeconds;
        // Deadline equality counts as met (the PR 4 pin), so only a
        // strictly blown deadline sheds; the queue-time budget is a
        // budget, so hitting it exactly does time out.
        const bool timed_out = cfg_.shed.queueTimeoutSeconds > 0.0 &&
            waited >= cfg_.shed.queueTimeoutSeconds;
        const bool blown =
            r.deadlineSeconds > 0.0 && waited > r.deadlineSeconds;
        if (!timed_out && !blown) {
            ++i;
            continue;
        }
        ServeRequest gone = std::move(r);
        queue_.erase(queue_.begin() + static_cast<std::ptrdiff_t>(i));
        shedRequest(std::move(gone), timed_out);
        ++dropped;
    }
    return dropped;
}

void
BatchScheduler::shedRequest(ServeRequest r, bool timed_out)
{
    r.state = RequestState::Shed;
    r.finishSeconds = clock_;
    if (tracer_ != nullptr)
        tracer_->instant(reqTrack_,
                         (timed_out ? "timeout#" : "shed#") +
                             std::to_string(r.id),
                         secondsToTicks(clock_));
    metrics_.shedRequest(r, timed_out);
    shed_.push_back(std::move(r));
}

double
BatchScheduler::estimateTtftSeconds(const ServeRequest &head) const
{
    // Earliest possible first token: the wait so far plus the head's
    // own prefill, ignoring everything else contending for the next
    // iteration - a lower bound, so margin 1.0 sheds only requests
    // that are provably already late.
    const double prefill = pricer_ != nullptr
        ? pricer_->prefillSeconds(head.inputTokens, 0)
        : cost_.prefillSeconds(head.inputTokens, 0);
    return (clock_ - head.arrivalSeconds) + prefill;
}

void
BatchScheduler::requeueFcfs(ServeRequest r)
{
    // The queue is kept sorted by (arrival, id) - true for plain
    // submissions already - so a preempted request resumes exactly at
    // its FCFS position instead of jumping earlier arrivals.
    auto it = std::lower_bound(queue_.begin(), queue_.end(), r,
                               fcfsBefore);
    queue_.insert(it, std::move(r));
}

void
BatchScheduler::preemptMember(ServeRequest &r)
{
    releaseBlocks(r);
    metrics_.notePreemption(r.inputTokens + r.generated);
    if (tracer_ != nullptr)
        tracer_->instant(reqTrack_, "preempt#" + std::to_string(r.id),
                         secondsToTicks(clock_));
    r.generated = 0;
    r.cachedPrefixTokens = 0;
    r.prefilledTokens = 0;
    ++r.preemptions;
    r.state = RequestState::Queued;
    requeueFcfs(r);
}

std::vector<bool>
BatchScheduler::growPaged()
{
    const std::uint64_t B = cfg_.paged.blockTokens;
    std::vector<bool> gone(batch_.size(), false);
    std::vector<bool> stalled(batch_.size(), false);

    for (std::size_t i = 0; i < batch_.size(); ++i) {
        if (gone[i])
            continue;
        ServeRequest &r = batch_[i];
        // Blocks for the token decoded this iteration.
        const std::uint64_t needed =
            (r.inputTokens + r.generated + 1 + B - 1) / B;
        auto &blocks = heldBlocks_[r.id];
        while (blocks.size() < needed) {
            const BlockId b = allocateBlock();
            if (b != InvalidBlock) {
                blocks.push_back(b);
                continue;
            }
            if (!cfg_.paged.preemption) {
                // Backpressure without eviction: sit out this
                // iteration and retry once something retires.
                stalled[i] = true;
                break;
            }
            // Preempt the lowest-priority live member (latest
            // arrival, highest id) - possibly the grower itself.
            std::size_t victim = i;
            for (std::size_t j = 0; j < batch_.size(); ++j)
                if (!gone[j] && fcfsBefore(batch_[victim], batch_[j]))
                    victim = j;
            preemptMember(batch_[victim]);
            gone[victim] = true;
            if (victim == i)
                break; // its own blocks are gone; stop growing
        }
        if (!gone[i] && !stalled[i]) {
            if (tiered())
                assignChainMeta(r.id, blocks);
            metrics_.notePeakKvBlocks(blockMgr_->stats().usedBlocks);
        }
    }

    // Compact preempted members out, keeping order and stall flags
    // aligned.
    std::vector<ServeRequest> keep;
    std::vector<bool> keep_stalled;
    keep.reserve(batch_.size());
    keep_stalled.reserve(batch_.size());
    for (std::size_t i = 0; i < batch_.size(); ++i) {
        if (gone[i])
            continue;
        keep.push_back(std::move(batch_[i]));
        keep_stalled.push_back(stalled[i]);
    }
    batch_ = std::move(keep);
    return keep_stalled;
}

double
BatchScheduler::kvUtilization() const
{
    return cfg_.paged.enabled ? blockMgr_->utilization()
                              : kv_.utilization();
}

std::uint64_t
BatchScheduler::probeCachedTokens(const ServeRequest &req) const
{
    if (!cfg_.paged.enabled || !cfg_.paged.prefixCaching ||
        req.sharedPrefixTokens == 0)
        return 0;
    const std::uint64_t B = cfg_.paged.blockTokens;
    return prefixCache_->peekCachedTokens(
        req.sharedBlockKeys(B), req.sharedPartialTokens(B),
        req.sharedBlockKey(req.sharedFullBlocks(B)), B);
}

bool
BatchScheduler::step()
{
    // Paged decode growth: every member must own the block its next
    // token lands in before the iteration runs. May preempt members
    // back into the queue (they re-admit at their FCFS position,
    // recomputing their prompt) or - preemption off - stall them in
    // place. Growth runs BEFORE admission so running members outrank
    // new arrivals for blocks: were admission first, the head could
    // swallow the very block a member's growth then frees for it by
    // preemption, and since same-step joiners are invisible to the
    // victim scan, two block-starved requests can otherwise trade
    // preempt-for-admit forever without either crossing its next
    // block boundary (a livelock, not just unfairness).
    // The migration iteration opens before growth/admission so any
    // demotion they trigger lands in this step's transfer batch.
    shedExpired();
    if (tiered()) {
        migration_->beginIteration(clock_);
        ++iterationSeq_;
    }

    std::vector<bool> stalled;
    if (cfg_.paged.enabled && !batch_.empty())
        stalled = growPaged();

    std::vector<ServeRequest> joining;
    admit(joining);

    // Idle: fast-forward to the next arrival and try again. A failed
    // admission probe may still have demoted victims (its own blocks
    // rolled back, the victims' transfers did not); settle those on
    // the pre-jump clock before moving it.
    if (batch_.empty() && joining.empty()) {
        if (queue_.empty()) {
            if (tiered())
                settleTierIdle();
            return false;
        }
        if (tiered())
            settleTierIdle();
        clock_ = std::max(clock_, queue_.front().arrivalSeconds);
        if (tiered())
            migration_->beginIteration(clock_);
        // The fast-forward may have blown queued deadlines; sweep
        // before admission so an expired head is shed, not admitted.
        const std::size_t dropped = shedExpired();
        admit(joining);
        if (joining.empty()) {
            if (tiered())
                settleTierIdle();
            // Shedding alone is progress: keep draining as long as
            // the sweep removed something and work remains queued.
            return dropped > 0 && !queue_.empty();
        }
    }

    fatal_if(cfg_.paged.enabled && joining.empty() && !batch_.empty() &&
                 !stalled.empty() &&
                 std::find(stalled.begin(), stalled.end(), false) ==
                     stalled.end(),
             "paged KV deadlock: every batch member is stalled and "
             "nothing can retire; enable preemption or add capacity");
    stalled.resize(batch_.size(), false);

    const double iter_start = clock_;

    // Iteration cost: joiners pay their prefill (minus prompt tokens
    // served by the prefix cache), everyone already in the batch
    // decodes one token against their current context. With a chunk
    // budget set, a joiner pays only its first chunk - priced as a
    // prefill of the chunk's end position with everything before it
    // cached, so attention against the already-prefilled context is
    // charged - and mid-chunk batch members pay their next chunk
    // instead of a decode step. A handed-over continuation owes no
    // prefill at all: its KV arrived over the CXL link.
    double cost = 0.0;
    if (pricer_ != nullptr) {
        for (const ServeRequest &r : joining) {
            if (handedOver(r))
                continue;
            if (cfg_.chunkTokens > 0)
                cost += pricer_->prefillSeconds(
                    r.prefilledTokens + chunkAdvance(r),
                    r.prefilledTokens);
            else
                cost += pricer_->prefillSeconds(r.inputTokens,
                                                r.cachedPrefixTokens);
        }
    } else {
        for (const ServeRequest &r : joining) {
            if (handedOver(r))
                continue;
            if (cfg_.chunkTokens > 0)
                cost += cost_.prefillSeconds(
                    r.prefilledTokens + chunkAdvance(r),
                    r.prefilledTokens);
            else
                cost += cost_.prefillSeconds(r.inputTokens,
                                             r.cachedPrefixTokens);
        }
    }
    if (cfg_.chunkTokens > 0) {
        for (std::size_t i = 0; i < batch_.size(); ++i) {
            if (stalled[i] || !prefilling(batch_[i]))
                continue;
            const ServeRequest &r = batch_[i];
            cost += pricer_ != nullptr
                ? pricer_->prefillSeconds(
                      r.prefilledTokens + chunkAdvance(r),
                      r.prefilledTokens)
                : cost_.prefillSeconds(
                      r.prefilledTokens + chunkAdvance(r),
                      r.prefilledTokens);
        }
    }
    std::vector<std::uint64_t> contexts;
    contexts.reserve(batch_.size());
    for (std::size_t i = 0; i < batch_.size(); ++i)
        if (!stalled[i] && !prefilling(batch_[i]))
            contexts.push_back(batch_[i].contextTokens() + 1);
    cost += pricer_ != nullptr
        ? pricer_->decodeIterationSeconds(contexts)
        : cost_.decodeIterationSeconds(contexts);

    // Far-tier link time the decode-ahead pipeline could not hide
    // extends the iteration; with tiering off tier_extra stays exactly
    // 0.0 and dur == cost bit for bit.
    double tier_extra = 0.0;
    if (tiered()) {
        if (cfg_.paged.tier.farAccess == tier::FarAccess::Promote)
            promoteForBatch(stalled);
        tier_extra = migration_->priceIteration(
            cost, farStreamBytes(joining, stalled),
            inferenceLinkBytes(joining, stalled));
    }
    const double dur = cost + tier_extra;
    clock_ += dur;

    // Transfers settle with the step, before the fault poll: a lost
    // iteration loses generated tokens, not bytes already moved.
    if (tiered()) {
        noteTierMetrics(migration_->endIteration(clock_));
        touchTierMeta(stalled);
    }

    // The iteration's work can be lost to an injected fault; the time
    // it burned still passed. GroupFailStop takes the same recovery
    // path with a much longer cooldown (a real outage, not a reset
    // blip); IterationSlow keeps the work but stretches the step.
    const fault::FaultKind hit = faultSite_ != nullptr
        ? faultSite_->poll(secondsToTicks(clock_))
        : fault::FaultKind::None;
    if (hit == fault::FaultKind::IterationFail ||
        hit == fault::FaultKind::GroupFailStop) {
        if (tracer_ != nullptr) {
            tracer_->complete(iterTrack_, "iter_failed",
                              secondsToTicks(iter_start),
                              secondsToTicks(clock_));
            tracer_->instant(iterTrack_, "iteration_fault",
                             secondsToTicks(clock_));
        }
        if (breaker_ != nullptr)
            breaker_->noteIteration(false, dur, clock_);
        failIteration(joining,
                      hit == fault::FaultKind::GroupFailStop);
        return true;
    }
    double dur_eff = dur;
    if (hit == fault::FaultKind::IterationSlow) {
        // Straggler device: the iteration's tokens all land, late.
        const double extra =
            (cfg_.ras.stragglerSlowdownFactor - 1.0) * dur;
        clock_ += extra;
        dur_eff += extra;
        if (tracer_ != nullptr)
            tracer_->instant(iterTrack_, "straggler",
                             secondsToTicks(clock_));
    }

    // Prefill produced each joiner's first token. A request restarted
    // after a failed iteration keeps its original first-token time (and
    // its TTFT was already sampled). Under chunking only the LAST
    // chunk produces the first token - earlier chunks just advance the
    // prefill mark - and a handed-over continuation brought its first
    // token with it (it starts decoding next iteration).
    for (ServeRequest &r : joining) {
        if (handedOver(r)) {
            if (tracer_ != nullptr)
                tracer_->instant(reqTrack_,
                                 "resume#" + std::to_string(r.id),
                                 secondsToTicks(clock_));
            continue;
        }
        if (cfg_.chunkTokens > 0) {
            const std::uint64_t adv = chunkAdvance(r);
            r.prefilledTokens += adv;
            if (adv > 0)
                metrics_.noteChunkIteration();
            if (r.prefilledTokens < r.inputTokens) {
                if (tracer_ != nullptr)
                    tracer_->instant(reqTrack_,
                                     "chunk#" + std::to_string(r.id),
                                     secondsToTicks(clock_));
                continue; // more chunks owed; no token yet
            }
        }
        r.generated = 1;
        if (r.firstTokenSeconds < 0.0) {
            r.firstTokenSeconds = clock_;
            metrics_.sampleTtft(r.ttftSeconds());
        }
        if (tracer_ != nullptr)
            tracer_->instant(reqTrack_,
                             "first_token#" + std::to_string(r.id),
                             secondsToTicks(clock_));
    }
    // Decoding members each produced one more token; their token
    // latency is the whole iteration (prefill interference included).
    // Stalled members (paged, preemption off) made no progress, and
    // mid-chunk members advanced their prefill instead of decoding -
    // their first token (and TTFT sample) lands with the last chunk,
    // matching the joiner path: no token-latency sample for it.
    for (std::size_t i = 0; i < batch_.size(); ++i) {
        if (stalled[i])
            continue;
        ServeRequest &r = batch_[i];
        if (prefilling(r)) {
            const std::uint64_t adv = chunkAdvance(r);
            r.prefilledTokens += adv;
            if (adv > 0)
                metrics_.noteChunkIteration();
            if (r.prefilledTokens < r.inputTokens) {
                if (tracer_ != nullptr)
                    tracer_->instant(reqTrack_,
                                     "chunk#" + std::to_string(r.id),
                                     secondsToTicks(clock_));
                continue;
            }
            r.generated = 1;
            if (r.firstTokenSeconds < 0.0) {
                r.firstTokenSeconds = clock_;
                metrics_.sampleTtft(r.ttftSeconds());
            }
            if (tracer_ != nullptr)
                tracer_->instant(
                    reqTrack_, "first_token#" + std::to_string(r.id),
                    secondsToTicks(clock_));
            continue;
        }
        ++r.generated;
        metrics_.sampleTokenLatency(dur_eff);
        if (tracer_ != nullptr)
            tracer_->instant(reqTrack_,
                             "token#" + std::to_string(r.id),
                             secondsToTicks(clock_));
    }

    const std::size_t iter_batch = batch_.size() + joining.size();
    batch_.insert(batch_.end(), joining.begin(), joining.end());

    // Time-weighted KV accounting over the interval this iteration
    // occupied, measured while the batch still holds its memory.
    const std::uint64_t used_blocks =
        cfg_.paged.enabled ? blockMgr_->usedBlocks() : 0;
    metrics_.noteKvInterval(dur_eff, kvUtilization(), used_blocks);
    if (cfg_.paged.enabled) {
        // Internal fragmentation: slots allocated to running requests
        // but not (yet) holding KV.
        std::uint64_t alloc_slots = 0;
        std::uint64_t used_slots = 0;
        for (const ServeRequest &r : batch_) {
            auto it = heldBlocks_.find(r.id);
            if (it == heldBlocks_.end())
                continue;
            alloc_slots += it->second.size() * cfg_.paged.blockTokens;
            used_slots += r.contextTokens();
        }
        if (alloc_slots > 0)
            metrics_.sampleKvFragmentation(
                1.0 - static_cast<double>(used_slots) / alloc_slots);
    }

    // Retire finished members immediately; their KV frees now.
    std::vector<ServeRequest> still_running;
    still_running.reserve(batch_.size());
    for (ServeRequest &r : batch_) {
        if (r.generated >= r.outputTokens) {
            r.state = RequestState::Finished;
            r.finishSeconds = clock_;
            if (cfg_.paged.enabled)
                releaseBlocks(r);
            else
                kv_.release(r.worstCaseKvBytes(model_));
            if (tracer_ != nullptr)
                tracer_->instant(reqTrack_,
                                 "retire#" + std::to_string(r.id),
                                 secondsToTicks(clock_));
            metrics_.finishRequest(r);
            finished_.push_back(r);
        } else if (prefillHandoff_ && r.generated > 0) {
            // Disaggregated prefill: the first token is out, so this
            // group's job is done. Release the KV here - the bytes
            // travel to a decode group over the CXL link, priced by
            // the dispatcher - and park the request in the handoff
            // list; finishSeconds temporarily carries the transfer
            // start time until the dispatcher re-stamps it.
            // prefilledTokens == inputTokens is the continuation
            // contract the decode group keys on (handedOver); without
            // chunking nothing has stamped it yet.
            r.prefilledTokens = r.inputTokens;
            r.finishSeconds = clock_;
            if (cfg_.paged.enabled)
                releaseBlocks(r);
            else
                kv_.release(r.worstCaseKvBytes(model_));
            if (tracer_ != nullptr)
                tracer_->instant(reqTrack_,
                                 "handoff#" + std::to_string(r.id),
                                 secondsToTicks(clock_));
            handoffs_.push_back(r);
        } else {
            still_running.push_back(r);
        }
    }
    batch_ = std::move(still_running);

    metrics_.sampleIteration(iter_batch, queue_.size(),
                             kvUtilization());
    if (breaker_ != nullptr)
        breaker_->noteIteration(true, dur_eff, clock_);
    if (brownout_.observe(queue_.size())) {
        metrics_.noteBrownoutLevel(brownout_.level());
        if (tracer_ != nullptr)
            tracer_->instant(iterTrack_,
                             "brownout_level=" +
                                 std::to_string(brownout_.level()),
                             secondsToTicks(clock_));
    }
    if (tracer_ != nullptr) {
        const Tick end = secondsToTicks(clock_);
        tracer_->complete(iterTrack_, "iter",
                          secondsToTicks(iter_start), end);
        tracer_->counter(queueTrack_, end,
                         static_cast<double>(queue_.size()));
        tracer_->counter(kvTrack_, end, kvUtilization());
        tracer_->counter(batchTrack_, end,
                         static_cast<double>(iter_batch));
        if (cfg_.paged.enabled)
            tracer_->counter(blocksTrack_, end,
                             static_cast<double>(
                                 blockMgr_->usedBlocks()));
        if (tiered()) {
            const tier::TierStats &ts = tierPool_->stats();
            tracer_->counter(nearTrack_, end,
                             static_cast<double>(ts.nearUsed()));
            tracer_->counter(farTrack_, end,
                             static_cast<double>(ts.farUsed()));
        }
        if (brownoutTrack_ != trace::InvalidTrack)
            tracer_->counter(brownoutTrack_, end,
                             static_cast<double>(brownout_.level()));
    }
    return true;
}

void
BatchScheduler::failIteration(std::vector<ServeRequest> &joining,
                              bool fail_stop)
{
    metrics_.noteIterationFailure();

    // Recovery dead time (device reset + reload as the serving layer
    // sees it); the dispatcher routes new arrivals around this window.
    // A fail-stopped group is out for a real outage, not a blip.
    const double cooldown = fail_stop
        ? cfg_.ras.failStopCooldownSeconds
        : cfg_.ras.degradedCooldownSeconds;
    const double degraded_from = clock_;
    clock_ += cooldown;
    degradedUntil_ = clock_;
    metrics_.noteDegraded(cooldown);
    if (tracer_ != nullptr)
        tracer_->complete(iterTrack_, "degraded",
                          secondsToTicks(degraded_from),
                          secondsToTicks(degradedUntil_));

    // Everyone in the iteration loses their progress: KV state is
    // gone, so survivors restart from their prompt. Relative order is
    // preserved at the head of the queue (byte mode; the paged path
    // re-inserts at exact FCFS positions, which a prior preemption may
    // have shuffled).
    std::vector<ServeRequest> members;
    members.reserve(batch_.size() + joining.size());
    members.insert(members.end(), batch_.begin(), batch_.end());
    members.insert(members.end(), joining.begin(), joining.end());
    batch_.clear();

    for (auto it = members.rbegin(); it != members.rend(); ++it) {
        ServeRequest r = *it;
        if (cfg_.paged.enabled) {
            releaseBlocks(r);
            r.cachedPrefixTokens = 0;
        } else {
            kv_.release(r.worstCaseKvBytes(model_));
        }
        r.generated = 0;
        // Chunk progress (and a continuation's handed-over KV) is gone
        // with the iteration: survivors re-prefill from their prompt,
        // even on a decode group.
        r.prefilledTokens = 0;
        ++r.retries;
        if (r.retries > cfg_.ras.maxRequestRetries) {
            r.state = RequestState::Failed;
            r.finishSeconds = clock_;
            if (tracer_ != nullptr)
                tracer_->instant(reqTrack_,
                                 "fail#" + std::to_string(r.id),
                                 secondsToTicks(clock_));
            metrics_.failRequest();
            failed_.push_back(r);
            continue;
        }
        metrics_.noteRequestRetry();
        r.state = RequestState::Queued;
        if (tracer_ != nullptr)
            tracer_->instant(reqTrack_,
                             "requeue#" + std::to_string(r.id),
                             secondsToTicks(clock_));
        if (cfg_.paged.enabled)
            requeueFcfs(std::move(r));
        else
            queue_.push_front(r);
    }
}

void
BatchScheduler::advanceTo(double t)
{
    while (clock_ < t) {
        const bool startable = !batch_.empty() ||
            (!queue_.empty() && queue_.front().arrivalSeconds <= t);
        if (!startable || !step())
            break;
    }
}

void
BatchScheduler::drain()
{
    while (step()) {
    }
    panic_if(!queue_.empty() || !batch_.empty(),
             "drain left requests behind");
    // Every reserve must have been paired with exactly one release by
    // now (retire, preemption, or the requeue/Failed fault path): a
    // residue here is a KV accounting leak or double-release.
    panic_if(kv_.reservedBytes() != 0, "drain left ",
             kv_.reservedBytes(), " KV bytes reserved with no request "
             "in flight");
    if (cfg_.paged.enabled) {
        panic_if(!heldBlocks_.empty(), "drain left ",
                 heldBlocks_.size(), " requests holding KV blocks");
        panic_if(blockMgr_->usedBlocks() != prefixCache_->entries(),
                 "drain left ", blockMgr_->usedBlocks(), " KV blocks "
                 "used but only ", prefixCache_->entries(),
                 " prefix-cache entries to account for them");
    }
    if (tiered()) {
        tierPool_->checkConsistency();
        const tier::TierStats &ts = tierPool_->stats();
        panic_if(ts.promoteInFlight != 0 || ts.demoteInFlight != 0,
                 "drain left ", ts.promoteInFlight, " promotions and ",
                 ts.demoteInFlight, " demotions in flight");
    }
}

void
BatchScheduler::promoteForBatch(const std::vector<bool> &stalled)
{
    for (std::size_t i = 0; i < batch_.size(); ++i) {
        if (i < stalled.size() && stalled[i])
            continue;
        auto it = heldBlocks_.find(batch_[i].id);
        if (it == heldBlocks_.end())
            continue;
        for (BlockId b : it->second) {
            if (tierPool_->residency(b) != tier::Residency::Far)
                continue;
            if (tierPool_->nearFree() == 0)
                return; // promotions need frames; none left this step
            migration_->promote(b);
        }
    }
}

std::uint64_t
BatchScheduler::farStreamBytes(const std::vector<ServeRequest> &joining,
                               const std::vector<bool> &stalled) const
{
    // Every far-resident block of a request attending this step is
    // read across the link (promoted blocks already moved to
    // PromoteInFlight and pay as migrations instead).
    std::uint64_t bytes = 0;
    auto chain = [&](std::uint64_t id) {
        auto it = heldBlocks_.find(id);
        if (it == heldBlocks_.end())
            return;
        for (BlockId b : it->second)
            if (tierPool_->residency(b) == tier::Residency::Far)
                bytes += blockMgr_->blockBytes();
    };
    for (std::size_t i = 0; i < batch_.size(); ++i)
        if (!(i < stalled.size() && stalled[i]))
            chain(batch_[i].id);
    for (const ServeRequest &r : joining)
        chain(r.id);
    return bytes;
}

std::uint64_t
BatchScheduler::inferenceLinkBytes(
    const std::vector<ServeRequest> &joining,
    const std::vector<bool> &stalled) const
{
    // Host-link activation traffic competing with tier transfers: one
    // fp16 dModel vector down and up per prompt token (prefill) or
    // decode step. Chunked members only push their chunk's worth, and
    // a handed-over continuation pushed its prompt on its prefill
    // group already.
    const std::uint64_t act = 2ull * model_.dModel;
    std::uint64_t bytes = 0;
    for (const ServeRequest &r : joining) {
        if (handedOver(r))
            continue;
        bytes += (cfg_.chunkTokens > 0 ? chunkAdvance(r)
                                       : r.inputTokens) *
            act;
    }
    for (std::size_t i = 0; i < batch_.size(); ++i) {
        if (i < stalled.size() && stalled[i])
            continue;
        bytes += prefilling(batch_[i])
            ? chunkAdvance(batch_[i]) * act
            : 2ull * act;
    }
    return bytes;
}

void
BatchScheduler::touchTierMeta(const std::vector<bool> &stalled)
{
    for (std::size_t i = 0; i < batch_.size(); ++i) {
        if (i < stalled.size() && stalled[i])
            continue;
        auto it = heldBlocks_.find(batch_[i].id);
        if (it == heldBlocks_.end())
            continue;
        for (BlockId b : it->second)
            blockMeta_[b].lastTouch = iterationSeq_;
    }
}

void
BatchScheduler::settleTierIdle()
{
    if (migration_->pendingMigrations() == 0)
        return;
    // No compute to hide behind: the whole transfer batch is exposed.
    const double exposed = migration_->priceIteration(0.0, 0, 0);
    clock_ += exposed;
    noteTierMetrics(migration_->endIteration(clock_));
}

void
BatchScheduler::noteTierMetrics(const tier::TierIterationStats &iter)
{
    const tier::TierStats snap = tierPool_->stats();
    const std::uint64_t abandoned_delta =
        snap.abandonedMigrations - lastAbandoned_;
    lastAbandoned_ = snap.abandonedMigrations;
    const std::uint64_t pin_delta =
        tierPolicy_->pinViolations() - lastPinViolations_;
    lastPinViolations_ = tierPolicy_->pinViolations();
    metrics_.noteTierIteration(iter, snap, abandoned_delta, pin_delta);
}

KvSnapshot
BatchScheduler::kvSnapshot() const
{
    KvSnapshot s;
    s.pool = kv_.stats();
    s.paged = cfg_.paged.enabled;
    if (s.paged)
        s.blocks = blockMgr_->stats();
    s.tiered = tiered();
    if (s.tiered)
        s.tier = tierPool_->stats();
    return s;
}

SchedulerState
BatchScheduler::state() const
{
    SchedulerState s;
    s.clock = clock_;
    s.lastArrival = lastArrival_;
    s.degradedUntil = degradedUntil_;

    s.queue.assign(queue_.begin(), queue_.end());
    s.batch = batch_;
    s.finished = finished_;
    s.rejected = rejected_;
    s.failed = failed_;
    s.shed = shed_;
    s.handoffs = handoffs_;
    s.brownout = brownout_.state();

    s.kvPool = kv_.stats();

    s.paged = cfg_.paged.enabled;
    if (s.paged) {
        s.blocks = blockMgr_->state();
        s.prefix = prefixCache_->state();
        s.heldBlocks.assign(heldBlocks_.begin(), heldBlocks_.end());
        std::sort(s.heldBlocks.begin(), s.heldBlocks.end(),
                  [](const auto &a, const auto &b) {
                      return a.first < b.first;
                  });
    }

    s.tiered = tiered();
    if (s.tiered) {
        s.tierPool = tierPool_->state();
        s.migration = migration_->state();
        s.blockMeta = blockMeta_;
        s.pinViolations = tierPolicy_->pinViolations();
    }

    s.iterationSeq = iterationSeq_;
    s.lastAbandoned = lastAbandoned_;
    s.lastPinViolations = lastPinViolations_;
    return s;
}

void
BatchScheduler::restore(const SchedulerState &s)
{
    fatal_if(s.paged != cfg_.paged.enabled,
             "scheduler restore: state is ",
             s.paged ? "paged" : "byte-pool", ", scheduler is ",
             cfg_.paged.enabled ? "paged" : "byte-pool");
    fatal_if(s.tiered != tiered(),
             "scheduler restore: tiering mismatch");
    fatal_if(s.kvPool.capacityBytes != kv_.capacityBytes(),
             "scheduler restore: KV capacity ",
             s.kvPool.capacityBytes, " vs ", kv_.capacityBytes());

    clock_ = s.clock;
    lastArrival_ = s.lastArrival;
    degradedUntil_ = s.degradedUntil;

    queue_.assign(s.queue.begin(), s.queue.end());
    batch_ = s.batch;
    finished_ = s.finished;
    rejected_ = s.rejected;
    failed_ = s.failed;
    shed_ = s.shed;
    handoffs_ = s.handoffs;
    brownout_.restore(s.brownout);

    kv_.restore(s.kvPool);

    if (s.paged) {
        blockMgr_->restore(s.blocks);
        prefixCache_->restore(s.prefix);
        heldBlocks_.clear();
        for (const auto &[id, blocks] : s.heldBlocks)
            heldBlocks_.emplace(id, blocks);
    }

    if (s.tiered) {
        tierPool_->restore(s.tierPool);
        migration_->restore(s.migration);
        fatal_if(s.blockMeta.size() != blockMeta_.size(),
                 "scheduler restore: block metadata covers ",
                 s.blockMeta.size(), " blocks, scheduler has ",
                 blockMeta_.size());
        blockMeta_ = s.blockMeta;
        tierPolicy_->restorePinViolations(s.pinViolations);
    }

    iterationSeq_ = s.iterationSeq;
    lastAbandoned_ = s.lastAbandoned;
    lastPinViolations_ = s.lastPinViolations;
}

double
BatchScheduler::kvDemandFraction() const
{
    std::uint64_t demand = 0;
    for (const ServeRequest &r : queue_)
        demand += r.worstCaseKvBytes(model_);
    for (const ServeRequest &r : batch_)
        demand += r.worstCaseKvBytes(model_);
    const std::uint64_t cap = kv_.capacityBytes();
    return cap ? static_cast<double>(demand) / cap : 0.0;
}

std::uint64_t
BatchScheduler::outstandingTokens() const
{
    std::uint64_t total = 0;
    for (const ServeRequest &r : queue_)
        total += r.inputTokens + r.outputTokens;
    for (const ServeRequest &r : batch_)
        total += r.remainingTokens();
    return total;
}

} // namespace serve
} // namespace cxlpnm
