/**
 * @file
 * Overload protection for the serving tier: deadline-aware load
 * shedding and a brownout ladder that tightens admission before the
 * scheduler has to drop work. Under sustained overload a FCFS queue
 * grows without bound and every request blows its SLO — the classic
 * congestion cliff. Shedding turns guaranteed SLO misses into typed
 * Shed terminations, and the brownout ladder trades context length
 * and batch growth for queue relief first. Everything here is a pure
 * function of simulated time plus configuration, so protected runs
 * stay byte-identical across thread counts.
 */

#ifndef CXLPNM_SERVE_OVERLOAD_HH
#define CXLPNM_SERVE_OVERLOAD_HH

#include <cstdint>

#include "sim/logging.hh"

namespace cxlpnm
{
namespace serve
{

/** Invalid overload-protection configuration (typed, catchable). */
class OverloadConfigError : public FatalError
{
  public:
    using FatalError::FatalError;
};

/**
 * Deadline-aware load shedding. A request whose TTFT deadline is
 * already unmeetable at admission time (estimated via the iteration
 * pricer / cost model) is shed instead of being run to a guaranteed
 * SLO miss; a request that sits Queued past its deadline or past the
 * queue-time budget times out. Both end in RequestState::Shed, but
 * metrics account them separately (shed vs timed out).
 */
struct ShedConfig
{
    bool enabled = false;

    /**
     * Queue-time budget in seconds: a request still Queued this long
     * after arrival times out. 0 disables the timeout (deadline
     * shedding alone still applies to requests carrying deadlines).
     */
    double queueTimeoutSeconds = 0.0;

    /**
     * Safety factor on the admission-time TTFT estimate: shed when
     * estimate * margin > deadline. 1.0 sheds only provably-late
     * requests; > 1.0 sheds earlier, trading completion for goodput.
     */
    double estimateMargin = 1.0;

    /** @throws OverloadConfigError on out-of-range fields. */
    void validate() const;
};

/**
 * Brownout ladder: under sustained queue pressure the scheduler
 * climbs degradation levels that multiply down the admitted context
 * length and the batch-growth cap, shedding load quality before it
 * sheds requests. Pressure and relief must both be sustained for
 * sustainIterations consecutive iteration boundaries before the
 * level moves, so a single bursty iteration cannot flap the ladder.
 */
struct BrownoutConfig
{
    bool enabled = false;

    /** Queue depth at or above which an iteration counts as pressure. */
    std::uint64_t queueHighWatermark = 64;
    /** Queue depth at or below which an iteration counts as relief. */
    std::uint64_t queueLowWatermark = 16;
    /** Consecutive pressure/relief iterations before the level moves. */
    std::uint64_t sustainIterations = 8;
    /** Deepest ladder level. */
    std::uint64_t maxLevel = 3;

    /** Per-level multiplier on the max admitted context (prompt +
     *  output tokens); requests over the cap are skipped in the
     *  queue, not shed. */
    double contextCapFactor = 0.5;
    /** Per-level multiplier on the batch-size cap. */
    double batchCapFactor = 0.5;

    /** @throws OverloadConfigError on out-of-range fields. */
    void validate() const;
};

/** Runs one scheduler's brownout ladder (see BrownoutConfig). */
class BrownoutController
{
  public:
    explicit BrownoutController(const BrownoutConfig &cfg);

    /**
     * Observe the queue depth at an iteration boundary; returns true
     * when the ladder level changed (for tracing). Inert when the
     * config is disabled.
     */
    bool observe(std::uint64_t queue_depth);

    std::uint64_t level() const { return level_; }

    /** Max admitted context tokens at the current level. */
    std::uint64_t contextCap(std::uint64_t base) const;

    /** Batch-size cap at the current level (never below 1). */
    std::uint64_t batchCap(std::uint64_t base) const;

    /** Warm state, for snapshot/restore. */
    struct State
    {
        std::uint64_t level = 0;
        std::uint64_t highStreak = 0;
        std::uint64_t lowStreak = 0;
    };

    State
    state() const
    {
        return {level_, highStreak_, lowStreak_};
    }

    void
    restore(const State &s)
    {
        level_ = s.level;
        highStreak_ = s.highStreak;
        lowStreak_ = s.lowStreak;
    }

  private:
    BrownoutConfig cfg_;
    std::uint64_t level_ = 0;
    std::uint64_t highStreak_ = 0;
    std::uint64_t lowStreak_ = 0;
};

} // namespace serve
} // namespace cxlpnm

#endif // CXLPNM_SERVE_OVERLOAD_HH
