#include "serve/admission.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace cxlpnm
{
namespace serve
{

void
AdmissionConfig::validate() const
{
    if (tenantRatePerSec < 0.0)
        throw OverloadConfigError(
            "admission: tenantRatePerSec must be >= 0");
    if (tenantRatePerSec > 0.0 && !(tenantBurst >= 1.0))
        throw OverloadConfigError(
            "admission: tenantBurst must be >= 1 when rate limiting "
            "is on");
    if (kvHeadroomFraction < 0.0)
        throw OverloadConfigError(
            "admission: kvHeadroomFraction must be >= 0");
}

TokenBucket::TokenBucket(double rate_per_sec, double burst)
    : rate_(rate_per_sec), burst_(burst), fill_(burst)
{
}

bool
TokenBucket::tryTake(double now)
{
    if (now > lastRefill_) {
        fill_ = std::min(burst_,
                         fill_ + rate_ * (now - lastRefill_));
        lastRefill_ = now;
    }
    if (fill_ < 1.0)
        return false;
    fill_ -= 1.0;
    return true;
}

const char *
admissionDecisionName(AdmissionDecision d)
{
    switch (d) {
    case AdmissionDecision::Admit:
        return "admit";
    case AdmissionDecision::Throttled:
        return "throttled";
    case AdmissionDecision::QueueFull:
        return "queue_full";
    case AdmissionDecision::KvSaturated:
        return "kv_saturated";
    }
    return "?";
}

AdmissionController::AdmissionController(const AdmissionConfig &cfg)
    : cfg_(cfg)
{
    if (cfg_.enabled)
        cfg_.validate();
}

AdmissionDecision
AdmissionController::decide(const ServeRequest &req, double now,
                            std::uint64_t queue_depth,
                            double kv_demand_fraction)
{
    if (!cfg_.enabled)
        return AdmissionDecision::Admit;
    if (cfg_.tenantRatePerSec > 0.0) {
        auto it = buckets_.find(req.tenant);
        if (it == buckets_.end())
            it = buckets_
                     .emplace(req.tenant,
                              TokenBucket(cfg_.tenantRatePerSec,
                                          cfg_.tenantBurst))
                     .first;
        if (!it->second.tryTake(now))
            return AdmissionDecision::Throttled;
    }
    if (cfg_.maxQueueDepth > 0 && queue_depth >= cfg_.maxQueueDepth)
        return AdmissionDecision::QueueFull;
    if (cfg_.kvHeadroomFraction > 0.0 &&
        kv_demand_fraction > cfg_.kvHeadroomFraction)
        return AdmissionDecision::KvSaturated;
    return AdmissionDecision::Admit;
}

AdmissionController::State
AdmissionController::state() const
{
    State s;
    s.buckets.reserve(buckets_.size());
    for (const auto &[tenant, bucket] : buckets_)
        s.buckets.emplace_back(tenant, bucket.state());
    return s;
}

void
AdmissionController::restore(const State &s)
{
    buckets_.clear();
    for (const auto &[tenant, bs] : s.buckets) {
        TokenBucket b(cfg_.tenantRatePerSec, cfg_.tenantBurst);
        b.restore(bs);
        buckets_.emplace(tenant, b);
    }
}

} // namespace serve
} // namespace cxlpnm
