/**
 * @file
 * Configuration of the two-tier (near / CXL-far) KV cache.
 *
 * The near tier is the device-local LPDDR the paged KvBlockManager
 * already models; the far tier is a CXL-attached memory pool behind
 * the host port. Tiering multiplies servable context length (the
 * 1M-token regime of the scalable-PNM follow-up work in PAPERS.md) at
 * the price of link traffic: every block demoted, promoted, or
 * streamed for attention crosses the same CXL link the inference
 * activations use, and the migration engine prices them together.
 */

#ifndef CXLPNM_SERVE_TIER_TIER_CONFIG_HH
#define CXLPNM_SERVE_TIER_TIER_CONFIG_HH

#include <cstdint>
#include <string>

#include "cxl/link.hh"

namespace cxlpnm
{
namespace serve
{
namespace tier
{

/** Which policy picks demotion victims when the near tier overflows. */
enum class TierPolicyKind
{
    /**
     * Evict the coldest block by last-attended iteration, preferring
     * blocks farther behind their owner's write head (deep prompt
     * history over the recent window a decode step re-reads hardest).
     */
    LruDecodeDistance,
    /**
     * Never demote a request's last `pinnedWindowBlocks` blocks (the
     * sliding attention window); among the rest, demote the earliest
     * chain position first.
     */
    PinnedRecentWindow,
};

/** How attention over far-resident blocks is served. */
enum class FarAccess
{
    /**
     * Stream far KV through the link each iteration it is attended
     * (no residency change). The decode-ahead prefetcher can overlap
     * these fetches with compute.
     */
    Stream,
    /**
     * Promote far blocks into free near frames before the iteration
     * (stall-for-promotion); whatever finds no free frame streams.
     */
    Promote,
};

const char *tierPolicyName(TierPolicyKind k);
const char *farAccessName(FarAccess m);
/** Parse a demo/bench knob; fatal on an unknown name. */
TierPolicyKind tierPolicyByName(const std::string &name);
FarAccess farAccessByName(const std::string &name);

/** Far-tier knobs hanging off PagedKvConfig. */
struct TierConfig
{
    /** CXL-far blocks added behind the near pool; 0 = tiering off. */
    std::uint64_t farBlocks = 0;
    TierPolicyKind policy = TierPolicyKind::LruDecodeDistance;
    /** PinnedRecentWindow: per-request blocks exempt from demotion. */
    std::uint32_t pinnedWindowBlocks = 4;
    /** Overlap next-layers' far fetches with current-layer compute. */
    bool prefetch = true;
    FarAccess farAccess = FarAccess::Stream;
    /** The link migrations and far streams are priced through. */
    cxl::CxlLinkParams link;

    bool enabled() const { return farBlocks > 0; }
};

} // namespace tier
} // namespace serve
} // namespace cxlpnm

#endif // CXLPNM_SERVE_TIER_TIER_CONFIG_HH
