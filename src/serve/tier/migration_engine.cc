#include "serve/tier/migration_engine.hh"

#include <string>

#include "sim/logging.hh"
#include "sim/types.hh"

namespace cxlpnm
{
namespace serve
{
namespace tier
{

MigrationEngine::MigrationEngine(TieredBlockPool &pool,
                                 const TierConfig &cfg,
                                 std::uint64_t block_bytes,
                                 std::uint32_t num_layers)
    : pool_(pool), cfg_(cfg), blockBytes_(block_bytes),
      prefetch_(num_layers, cfg.prefetch)
{
    fatal_if(block_bytes == 0, "migration engine with 0-byte blocks");
}

void
MigrationEngine::beginIteration(double now)
{
    panic_if(!issued_.empty(),
             "beginIteration with migrations still in flight");
    iterStart_ = now;
    priced_ = false;
    iter_ = TierIterationStats{};
}

void
MigrationEngine::demote(BlockId b)
{
    panic_if(priced_, "demote issued after the step was priced");
    pool_.beginDemote(b);
    issued_.push_back({b, false});
    ++iter_.demotions;
    iter_.migratedBytes += blockBytes_;
    // Near -> far pool crosses the device-to-host direction.
    traffic_.note(cxl::Direction::Upstream, blockBytes_);
}

void
MigrationEngine::promote(BlockId b)
{
    panic_if(priced_, "promote issued after the step was priced");
    pool_.beginPromote(b);
    issued_.push_back({b, true});
    ++iter_.promotions;
    iter_.migratedBytes += blockBytes_;
    traffic_.note(cxl::Direction::Downstream, blockBytes_);
}

void
MigrationEngine::noteFarBorn(BlockId b)
{
    panic_if(priced_, "far-born block noted after the step was priced");
    ++iter_.farBornBlocks;
    iter_.migratedBytes += blockBytes_;
    traffic_.note(cxl::Direction::Upstream, blockBytes_);
    if (tracer_ != nullptr)
        tracer_->instant(migTrack_, "far_born#" + std::to_string(b),
                         secondsToTicks(iterStart_));
}

double
MigrationEngine::priceIteration(double compute_seconds,
                                std::uint64_t stream_bytes,
                                std::uint64_t inference_bytes)
{
    panic_if(priced_, "iteration priced twice");
    priced_ = true;
    iter_.streamedBytes = stream_bytes;
    if (stream_bytes > 0)
        traffic_.note(cxl::Direction::Downstream, stream_bytes);

    // Every byte of the step shares the one link: per-block migration
    // transfers (each paying the port latency), the streamed far KV,
    // and the inference activations themselves.
    double link_seconds = 0.0;
    const std::uint64_t migrations =
        iter_.promotions + iter_.demotions + iter_.farBornBlocks;
    for (std::uint64_t i = 0; i < migrations; ++i)
        link_seconds += cxl::transferSeconds(cfg_.link, blockBytes_);
    link_seconds += cxl::transferSeconds(cfg_.link, stream_bytes);
    link_seconds += cxl::transferSeconds(cfg_.link, inference_bytes);

    const auto ov = prefetch_.overlap(compute_seconds, link_seconds);
    iter_.exposedSeconds = ov.exposedSeconds;
    iter_.hiddenSeconds = ov.hiddenSeconds;
    return ov.exposedSeconds;
}

const TierIterationStats &
MigrationEngine::endIteration(double end)
{
    panic_if(!priced_ && !issued_.empty(),
             "endIteration with unpriced migrations");
    // Spans serialize on the link from the step's start; the exposed
    // extension guarantees they all fit before @p end.
    double t = iterStart_;
    for (const Issued &m : issued_) {
        const double dur = cxl::transferSeconds(cfg_.link, blockBytes_);
        const Residency want = m.isPromote ? Residency::PromoteInFlight
                                           : Residency::DemoteInFlight;
        // A block freed since issue already left the ledger via the
        // manager's observer (counted abandoned); its data died with
        // it and there is nothing to flip.
        const bool live = pool_.residency(m.block) == want;
        if (live) {
            if (m.isPromote)
                pool_.finishPromote(m.block);
            else
                pool_.finishDemote(m.block);
        }
        if (tracer_ != nullptr && live) {
            tracer_->complete(
                migTrack_,
                std::string(m.isPromote ? "promote#" : "demote#") +
                    std::to_string(m.block),
                secondsToTicks(t), secondsToTicks(t + dur));
        }
        t += dur;
    }
    panic_if(t > end + 1e-9 && !issued_.empty(),
             "migration spans overran the iteration end");
    issued_.clear();

    promotionsTotal_ += iter_.promotions;
    demotionsTotal_ += iter_.demotions;
    farBornTotal_ += iter_.farBornBlocks;
    migratedBytesTotal_ += iter_.migratedBytes;
    streamedBytesTotal_ += iter_.streamedBytes;
    exposedTotal_ += iter_.exposedSeconds;
    hiddenTotal_ += iter_.hiddenSeconds;
    return iter_;
}

MigrationEngine::State
MigrationEngine::state() const
{
    panic_if(!issued_.empty(),
             "migration-engine snapshot with ", issued_.size(),
             " transfers in flight; snapshot between iterations");
    State s;
    s.traffic = traffic_;
    s.promotions = promotionsTotal_;
    s.demotions = demotionsTotal_;
    s.farBorn = farBornTotal_;
    s.migratedBytes = migratedBytesTotal_;
    s.streamedBytes = streamedBytesTotal_;
    s.exposedSeconds = exposedTotal_;
    s.hiddenSeconds = hiddenTotal_;
    return s;
}

void
MigrationEngine::restore(const State &s)
{
    panic_if(!issued_.empty(),
             "migration-engine restore with transfers in flight");
    traffic_ = s.traffic;
    promotionsTotal_ = s.promotions;
    demotionsTotal_ = s.demotions;
    farBornTotal_ = s.farBorn;
    migratedBytesTotal_ = s.migratedBytes;
    streamedBytesTotal_ = s.streamedBytes;
    exposedTotal_ = s.exposedSeconds;
    hiddenTotal_ = s.hiddenSeconds;
}

} // namespace tier
} // namespace serve
} // namespace cxlpnm
