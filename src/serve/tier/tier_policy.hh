/**
 * @file
 * Demotion-victim selection for the two-tier KV cache.
 *
 * When an allocation wants a near frame and none is free, the policy
 * picks which Near-resident block to demote to the far tier. The CXL
 * fine-tuning allocation study in PAPERS.md is blunt that placement
 * policy dominates once a far tier exists, so the interface is kept
 * pluggable and the two shipped policies bracket the design space:
 * coldest-first (LRU over attended iterations, decode distance as the
 * tiebreak) versus a hard recency pin (the sliding window attention
 * re-reads every step must stay near, history pages out first).
 *
 * Selection is a pure function of the ledger and block metadata, with
 * BlockId as the final tiebreak - never container iteration order -
 * so the demotion sequence is deterministic per the repo's contract.
 */

#ifndef CXLPNM_SERVE_TIER_TIER_POLICY_HH
#define CXLPNM_SERVE_TIER_TIER_POLICY_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "serve/tier/tier_config.hh"
#include "serve/tier/tiered_pool.hh"

namespace cxlpnm
{
namespace serve
{
namespace tier
{

/** Scheduler-maintained placement metadata for one block. */
struct TierBlockMeta
{
    static constexpr std::uint64_t NoOwner = ~0ull;

    /** Holding request id; NoOwner = prefix-cache-only block. */
    std::uint64_t owner = NoOwner;
    /** Index of this block in its owner's chain (0 = prompt head). */
    std::uint32_t chainPos = 0;
    /** The owner's next decoded token lands in this block; write
     *  heads are never demoted (their slots fill this iteration). */
    bool writeHead = false;
    /** Iteration sequence number when last attended. */
    std::uint64_t lastTouch = 0;
};

/** Read-only view a policy scans for a victim. */
struct TierPolicyContext
{
    const TieredBlockPool &pool;
    /** Indexed by BlockId; only Near blocks' entries are meaningful. */
    const std::vector<TierBlockMeta> &meta;
    /** Blocks currently held by a request id (decode-distance
     *  denominator); 0 for unknown owners. */
    std::function<std::uint64_t(std::uint64_t)> chainLen;
};

/** Picks demotion victims; stateless apart from its own counters. */
class TierPolicy
{
  public:
    virtual ~TierPolicy() = default;

    virtual const char *name() const = 0;

    /**
     * The Near block to demote next, or InvalidBlock when nothing is
     * demotable (no Near block, or only write heads remain).
     */
    virtual BlockId selectDemotion(const TierPolicyContext &ctx) = 0;

    /** Times the policy had to break its own protection rule to make
     *  progress (0 for policies without one). */
    virtual std::uint64_t pinViolations() const { return 0; }

    /** Warm-state restore of the violation counter (no-op for
     *  policies without one). */
    virtual void restorePinViolations(std::uint64_t) {}
};

/** Coldest block first; deeper decode distance breaks LRU ties. */
class LruDecodeDistancePolicy : public TierPolicy
{
  public:
    const char *name() const override { return "lru_decode_distance"; }
    BlockId selectDemotion(const TierPolicyContext &ctx) override;
};

/** Protect each owner's last @p window blocks; demote head-first. */
class PinnedRecentWindowPolicy : public TierPolicy
{
  public:
    explicit PinnedRecentWindowPolicy(std::uint32_t window)
        : window_(window)
    {
    }

    const char *name() const override { return "pinned_recent_window"; }
    BlockId selectDemotion(const TierPolicyContext &ctx) override;
    std::uint64_t pinViolations() const override { return violations_; }
    void
    restorePinViolations(std::uint64_t v) override
    {
        violations_ = v;
    }

  private:
    std::uint32_t window_;
    std::uint64_t violations_ = 0;
};

std::unique_ptr<TierPolicy> makeTierPolicy(const TierConfig &cfg);

} // namespace tier
} // namespace serve
} // namespace cxlpnm

#endif // CXLPNM_SERVE_TIER_TIER_POLICY_HH
