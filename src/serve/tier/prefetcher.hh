/**
 * @file
 * Decode-ahead prefetch model: overlapping next-layers' far-block
 * fetches with current-layer compute.
 *
 * Attention reads each layer's KV in layer order, so an iteration
 * that needs far-resident KV does not need all of it at once: while
 * layer l computes, the link can be fetching layers l+1.. - the
 * software pipeline the scalable-PNM long-context work builds on. The
 * model splits the iteration's compute C and far-link traffic F
 * evenly over L layers and exposes only what the pipeline cannot
 * hide:
 *
 *   pipeline end = F/L + C/L + (L-1) * max(C/L, F/L)
 *   exposed      = max(pipeline end, F, C) - C
 *
 * (F bounds link occupancy, C bounds compute; with prefetch off or a
 * single layer the whole F serializes in front of the compute.) The
 * arithmetic is closed-form rather than event-driven because the
 * serving layer runs on a seconds clock; the cycle-level link model
 * calibrates the bandwidth/latency constants the formula consumes.
 */

#ifndef CXLPNM_SERVE_TIER_PREFETCHER_HH
#define CXLPNM_SERVE_TIER_PREFETCHER_HH

#include <cstdint>

namespace cxlpnm
{
namespace serve
{
namespace tier
{

/** Closed-form overlap of far-KV fetches with layer compute. */
class DecodeAheadPrefetcher
{
  public:
    DecodeAheadPrefetcher(std::uint32_t num_layers, bool enabled);

    /** Link seconds split into critical-path and hidden time. */
    struct Overlap
    {
        /** Added to the iteration beyond its compute cost. */
        double exposedSeconds = 0.0;
        /** Link seconds overlapped under compute. */
        double hiddenSeconds = 0.0;
    };

    /**
     * Schedule @p link_seconds of far traffic against
     * @p compute_seconds of iteration compute.
     */
    Overlap overlap(double compute_seconds, double link_seconds) const;

    bool enabled() const { return enabled_; }
    std::uint32_t numLayers() const { return numLayers_; }

  private:
    std::uint32_t numLayers_;
    bool enabled_;
};

} // namespace tier
} // namespace serve
} // namespace cxlpnm

#endif // CXLPNM_SERVE_TIER_PREFETCHER_HH
