#include "serve/tier/tier_policy.hh"

#include "sim/logging.hh"

namespace cxlpnm
{
namespace serve
{
namespace tier
{
namespace
{

/** Shared candidate scan: the best Near, non-write-head block under a
 *  strict-weak "better victim" order; InvalidBlock when none. */
template <typename Better, typename Admit>
BlockId
scanVictims(const TierPolicyContext &ctx, Admit admit, Better better)
{
    BlockId best = InvalidBlock;
    const BlockId n = static_cast<BlockId>(ctx.meta.size());
    for (BlockId b = 0; b < n; ++b) {
        if (ctx.pool.residency(b) != Residency::Near)
            continue;
        if (ctx.meta[b].writeHead)
            continue;
        if (!admit(ctx.meta[b]))
            continue;
        if (best == InvalidBlock || better(ctx.meta[b], ctx.meta[best]))
            best = b;
    }
    return best;
}

/** Decode distance: how far behind its owner's write head @p m sits
 *  (0 for prefix-cache-only blocks, which have no head). */
std::uint64_t
decodeDistance(const TierPolicyContext &ctx, const TierBlockMeta &m)
{
    if (m.owner == TierBlockMeta::NoOwner)
        return 0;
    const std::uint64_t len = ctx.chainLen(m.owner);
    return len > m.chainPos ? len - 1 - m.chainPos : 0;
}

} // namespace

BlockId
LruDecodeDistancePolicy::selectDemotion(const TierPolicyContext &ctx)
{
    // Ownerless (prefix-cache-only) blocks go first: no live request
    // attends them every step, so they are pure capacity. Among owned
    // blocks: least recently attended, then the block farthest behind
    // its owner's write head, then the smallest id.
    return scanVictims(
        ctx, [](const TierBlockMeta &) { return true; },
        [&ctx](const TierBlockMeta &a, const TierBlockMeta &b) {
            const bool a_owned = a.owner != TierBlockMeta::NoOwner;
            const bool b_owned = b.owner != TierBlockMeta::NoOwner;
            if (a_owned != b_owned)
                return !a_owned;
            if (a.lastTouch != b.lastTouch)
                return a.lastTouch < b.lastTouch;
            return decodeDistance(ctx, a) > decodeDistance(ctx, b);
            // Equal on all keys: scanVictims keeps the smaller id.
        });
}

BlockId
PinnedRecentWindowPolicy::selectDemotion(const TierPolicyContext &ctx)
{
    // A block is pinned while it sits within its owner's last
    // `window_` blocks (the recency window every decode step
    // re-reads); ownerless blocks are never pinned.
    auto pinned = [&](const TierBlockMeta &m) {
        if (m.owner == TierBlockMeta::NoOwner)
            return false;
        const std::uint64_t len = ctx.chainLen(m.owner);
        return m.chainPos + window_ >= len;
    };
    auto better = [&ctx](const TierBlockMeta &a, const TierBlockMeta &b) {
        const bool a_owned = a.owner != TierBlockMeta::NoOwner;
        const bool b_owned = b.owner != TierBlockMeta::NoOwner;
        if (a_owned != b_owned)
            return !a_owned;
        if (a.chainPos != b.chainPos)
            return a.chainPos < b.chainPos;
        return a.lastTouch < b.lastTouch;
    };
    const BlockId b = scanVictims(
        ctx, [&](const TierBlockMeta &m) { return !pinned(m); },
        better);
    if (b != InvalidBlock)
        return b;
    // Every unpinned candidate is gone; breaking the pin beats
    // deadlocking the allocator. Counted so sweeps can see when the
    // window exceeds what the near tier can actually hold.
    const BlockId forced = scanVictims(
        ctx, [](const TierBlockMeta &) { return true; }, better);
    if (forced != InvalidBlock)
        ++violations_;
    return forced;
}

std::unique_ptr<TierPolicy>
makeTierPolicy(const TierConfig &cfg)
{
    switch (cfg.policy) {
      case TierPolicyKind::LruDecodeDistance:
        return std::make_unique<LruDecodeDistancePolicy>();
      case TierPolicyKind::PinnedRecentWindow:
        return std::make_unique<PinnedRecentWindowPolicy>(
            cfg.pinnedWindowBlocks);
    }
    panic("unknown tier policy");
}

const char *
tierPolicyName(TierPolicyKind k)
{
    switch (k) {
      case TierPolicyKind::LruDecodeDistance:
        return "lru_decode_distance";
      case TierPolicyKind::PinnedRecentWindow:
        return "pinned_recent_window";
    }
    return "<bad>";
}

const char *
farAccessName(FarAccess m)
{
    switch (m) {
      case FarAccess::Stream: return "stream";
      case FarAccess::Promote: return "promote";
    }
    return "<bad>";
}

TierPolicyKind
tierPolicyByName(const std::string &name)
{
    if (name == "lru" || name == "lru_decode_distance")
        return TierPolicyKind::LruDecodeDistance;
    if (name == "pinned" || name == "pinned_recent_window")
        return TierPolicyKind::PinnedRecentWindow;
    fatal("unknown tier policy '", name,
          "' (expected lru or pinned)");
}

FarAccess
farAccessByName(const std::string &name)
{
    if (name == "stream")
        return FarAccess::Stream;
    if (name == "promote")
        return FarAccess::Promote;
    fatal("unknown far-access mode '", name,
          "' (expected stream or promote)");
}

} // namespace tier
} // namespace serve
} // namespace cxlpnm
