/**
 * @file
 * Per-block residency tracking over a KvBlockManager whose capacity
 * spans both tiers.
 *
 * The manager's block-ID space covers near + far blocks in one dense
 * range, so ref-counting, the prefix cache, and every held-block list
 * work unchanged; this pool only answers *where* each allocated block
 * currently lives. The near tier is a count of frames, not a set of
 * reserved IDs: any block may occupy a near frame, and demotion hands
 * the victim's frame to the newcomer immediately (victim-buffer
 * semantics - the demoted bytes are on the wire or in the port's
 * victim buffer, so DemoteInFlight does not hold a near frame while
 * PromoteInFlight already does).
 *
 * As the manager's Observer, the pool sees every free: a block
 * released mid-migration (preemption, fault recovery, prefix-cache
 * eviction) drops to None on the spot and its transfer is counted
 * abandoned, so the migration engine never completes a move into a
 * reissued block.
 */

#ifndef CXLPNM_SERVE_TIER_TIERED_POOL_HH
#define CXLPNM_SERVE_TIER_TIERED_POOL_HH

#include <cstdint>
#include <vector>

#include "serve/kv_block_manager.hh"

namespace cxlpnm
{
namespace serve
{
namespace tier
{

/** Where an allocated block's KV bytes live. */
enum class Residency : std::uint8_t
{
    None,            // free block (or never placed)
    Near,            // device-local LPDDR
    Far,             // CXL-attached pool
    PromoteInFlight, // far -> near transfer issued this iteration
    DemoteInFlight,  // near -> far transfer issued this iteration
};

const char *residencyName(Residency r);

/** Snapshot of the pool's residency ledger. */
struct TierStats
{
    std::uint64_t nearCapacity = 0;
    std::uint64_t farCapacity = 0;
    /** Settled residents per tier. */
    std::uint64_t nearBlocks = 0;
    std::uint64_t farBlocks = 0;
    std::uint64_t promoteInFlight = 0;
    std::uint64_t demoteInFlight = 0;
    std::uint64_t peakFarBlocks = 0;
    /** Migrations whose block was freed before completion. */
    std::uint64_t abandonedMigrations = 0;

    /** Near frames occupied (a promotion holds its target frame). */
    std::uint64_t nearUsed() const { return nearBlocks + promoteInFlight; }
    /** Far slots occupied (a demotion holds its target slot). */
    std::uint64_t farUsed() const { return farBlocks + demoteInFlight; }
    std::uint64_t nearFree() const { return nearCapacity - nearUsed(); }
};

/** Residency ledger; all transitions are scheduler-driven. */
class TieredBlockPool : public KvBlockManager::Observer
{
  public:
    /**
     * @param mgr  block manager spanning both tiers (total blocks =
     *             near + far); the pool registers as its observer.
     * @param near_capacity_blocks  frames in the near tier (> 0,
     *             <= mgr.totalBlocks()).
     */
    TieredBlockPool(KvBlockManager &mgr,
                    std::uint64_t near_capacity_blocks);
    ~TieredBlockPool() override;

    TieredBlockPool(const TieredBlockPool &) = delete;
    TieredBlockPool &operator=(const TieredBlockPool &) = delete;

    Residency residency(BlockId b) const;
    bool
    inFlight(BlockId b) const
    {
        const Residency r = residency(b);
        return r == Residency::PromoteInFlight ||
            r == Residency::DemoteInFlight;
    }

    std::uint64_t nearFree() const { return stats_.nearFree(); }

    // --- transitions (panic on an illegal source state) ---
    /** None -> Near: a fresh allocation takes a free near frame. */
    void placeNear(BlockId b);
    /** None -> Far: born far; its KV is written across the link. */
    void placeFar(BlockId b);
    /** Near -> DemoteInFlight: frame freed for reuse immediately. */
    void beginDemote(BlockId b);
    /** DemoteInFlight -> Far: the transfer's tail arrived. */
    void finishDemote(BlockId b);
    /** Far -> PromoteInFlight: claims a free near frame now. */
    void beginPromote(BlockId b);
    /** PromoteInFlight -> Near. */
    void finishPromote(BlockId b);

    const TierStats &stats() const { return stats_; }

    /** Residency counters re-derived from the per-block array; panics
     *  on any divergence from the incremental ledger (drain checks). */
    void checkConsistency() const;

    /** Residency ledger state (warm-state snapshot/restore). Only
     *  settled residencies are legal: snapshots are taken between
     *  iterations, when nothing is in flight. */
    struct State
    {
        std::vector<std::uint8_t> residency;
        TierStats stats;
    };

    State state() const;
    /** Fatal on a capacity/size mismatch or in-flight residency. */
    void restore(const State &s);

    // --- KvBlockManager::Observer ---
    void onAllocated(BlockId b) override;
    void onFreed(BlockId b) override;

  private:
    void dropResident(BlockId b);

    KvBlockManager &mgr_;
    std::vector<Residency> residency_;
    TierStats stats_;
};

} // namespace tier
} // namespace serve
} // namespace cxlpnm

#endif // CXLPNM_SERVE_TIER_TIERED_POOL_HH
