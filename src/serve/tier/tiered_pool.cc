#include "serve/tier/tiered_pool.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace cxlpnm
{
namespace serve
{
namespace tier
{

const char *
residencyName(Residency r)
{
    switch (r) {
      case Residency::None: return "none";
      case Residency::Near: return "near";
      case Residency::Far: return "far";
      case Residency::PromoteInFlight: return "promote_in_flight";
      case Residency::DemoteInFlight: return "demote_in_flight";
    }
    return "<bad>";
}

TieredBlockPool::TieredBlockPool(KvBlockManager &mgr,
                                 std::uint64_t near_capacity_blocks)
    : mgr_(mgr), residency_(mgr.totalBlocks(), Residency::None)
{
    fatal_if(near_capacity_blocks == 0,
             "near tier smaller than one block");
    fatal_if(near_capacity_blocks > mgr.totalBlocks(),
             "near tier (", near_capacity_blocks,
             " blocks) larger than the whole pool (",
             mgr.totalBlocks(), ")");
    stats_.nearCapacity = near_capacity_blocks;
    stats_.farCapacity = mgr.totalBlocks() - near_capacity_blocks;
    mgr_.setObserver(this);
}

TieredBlockPool::~TieredBlockPool()
{
    mgr_.setObserver(nullptr);
}

Residency
TieredBlockPool::residency(BlockId b) const
{
    panic_if(b >= residency_.size(), "residency of block ", b, " of ",
             residency_.size());
    return residency_[b];
}

void
TieredBlockPool::placeNear(BlockId b)
{
    panic_if(residency(b) != Residency::None, "placeNear on a ",
             residencyName(residency_[b]), " block ", b);
    panic_if(stats_.nearFree() == 0,
             "placeNear with no free near frame");
    residency_[b] = Residency::Near;
    ++stats_.nearBlocks;
}

void
TieredBlockPool::placeFar(BlockId b)
{
    panic_if(residency(b) != Residency::None, "placeFar on a ",
             residencyName(residency_[b]), " block ", b);
    panic_if(stats_.farUsed() >= stats_.farCapacity,
             "placeFar with the far tier full");
    residency_[b] = Residency::Far;
    ++stats_.farBlocks;
    stats_.peakFarBlocks =
        std::max(stats_.peakFarBlocks, stats_.farUsed());
}

void
TieredBlockPool::beginDemote(BlockId b)
{
    panic_if(residency(b) != Residency::Near, "beginDemote on a ",
             residencyName(residency_[b]), " block ", b);
    panic_if(stats_.farUsed() >= stats_.farCapacity,
             "beginDemote with the far tier full");
    residency_[b] = Residency::DemoteInFlight;
    --stats_.nearBlocks;
    ++stats_.demoteInFlight;
    stats_.peakFarBlocks =
        std::max(stats_.peakFarBlocks, stats_.farUsed());
}

void
TieredBlockPool::finishDemote(BlockId b)
{
    panic_if(residency(b) != Residency::DemoteInFlight,
             "finishDemote on a ", residencyName(residency_[b]),
             " block ", b);
    residency_[b] = Residency::Far;
    --stats_.demoteInFlight;
    ++stats_.farBlocks;
}

void
TieredBlockPool::beginPromote(BlockId b)
{
    panic_if(residency(b) != Residency::Far, "beginPromote on a ",
             residencyName(residency_[b]), " block ", b);
    panic_if(stats_.nearFree() == 0,
             "beginPromote with no free near frame");
    residency_[b] = Residency::PromoteInFlight;
    --stats_.farBlocks;
    ++stats_.promoteInFlight;
}

void
TieredBlockPool::finishPromote(BlockId b)
{
    panic_if(residency(b) != Residency::PromoteInFlight,
             "finishPromote on a ", residencyName(residency_[b]),
             " block ", b);
    residency_[b] = Residency::Near;
    --stats_.promoteInFlight;
    ++stats_.nearBlocks;
}

void
TieredBlockPool::dropResident(BlockId b)
{
    switch (residency_[b]) {
      case Residency::None:
        break;
      case Residency::Near:
        --stats_.nearBlocks;
        break;
      case Residency::Far:
        --stats_.farBlocks;
        break;
      case Residency::PromoteInFlight:
        --stats_.promoteInFlight;
        ++stats_.abandonedMigrations;
        break;
      case Residency::DemoteInFlight:
        --stats_.demoteInFlight;
        ++stats_.abandonedMigrations;
        break;
    }
    residency_[b] = Residency::None;
}

void
TieredBlockPool::onAllocated(BlockId b)
{
    panic_if(residency(b) != Residency::None,
             "allocated block ", b, " still ",
             residencyName(residency_[b]), " in the tier ledger");
}

void
TieredBlockPool::onFreed(BlockId b)
{
    panic_if(b >= residency_.size(), "freed block ", b, " of ",
             residency_.size());
    dropResident(b);
}

void
TieredBlockPool::checkConsistency() const
{
    TierStats derived;
    for (Residency r : residency_) {
        switch (r) {
          case Residency::None: break;
          case Residency::Near: ++derived.nearBlocks; break;
          case Residency::Far: ++derived.farBlocks; break;
          case Residency::PromoteInFlight:
            ++derived.promoteInFlight;
            break;
          case Residency::DemoteInFlight:
            ++derived.demoteInFlight;
            break;
        }
    }
    panic_if(derived.nearBlocks != stats_.nearBlocks ||
                 derived.farBlocks != stats_.farBlocks ||
                 derived.promoteInFlight != stats_.promoteInFlight ||
                 derived.demoteInFlight != stats_.demoteInFlight,
             "tier ledger drift: counters near=", stats_.nearBlocks,
             " far=", stats_.farBlocks, " promote=",
             stats_.promoteInFlight, " demote=", stats_.demoteInFlight,
             " vs per-block near=", derived.nearBlocks, " far=",
             derived.farBlocks, " promote=", derived.promoteInFlight,
             " demote=", derived.demoteInFlight);
    panic_if(stats_.nearUsed() > stats_.nearCapacity,
             "tier ledger holds ", stats_.nearUsed(),
             " near frames of ", stats_.nearCapacity);
    panic_if(stats_.farUsed() > stats_.farCapacity,
             "tier ledger holds ", stats_.farUsed(),
             " far slots of ", stats_.farCapacity);
}

TieredBlockPool::State
TieredBlockPool::state() const
{
    State s;
    s.residency.reserve(residency_.size());
    for (Residency r : residency_) {
        panic_if(r == Residency::PromoteInFlight ||
                     r == Residency::DemoteInFlight,
                 "tier snapshot with a migration in flight; snapshot "
                 "between iterations");
        s.residency.push_back(static_cast<std::uint8_t>(r));
    }
    s.stats = stats_;
    return s;
}

void
TieredBlockPool::restore(const State &s)
{
    fatal_if(s.residency.size() != residency_.size(),
             "tier restore: state covers ", s.residency.size(),
             " blocks, pool has ", residency_.size());
    fatal_if(s.stats.nearCapacity != stats_.nearCapacity ||
                 s.stats.farCapacity != stats_.farCapacity,
             "tier restore: capacity mismatch (state ",
             s.stats.nearCapacity, "+", s.stats.farCapacity,
             ", pool ", stats_.nearCapacity, "+", stats_.farCapacity,
             ")");
    for (std::size_t i = 0; i < s.residency.size(); ++i) {
        const auto r = static_cast<Residency>(s.residency[i]);
        fatal_if(r != Residency::None && r != Residency::Near &&
                     r != Residency::Far,
                 "tier restore: block ", i, " has residency ",
                 static_cast<int>(s.residency[i]),
                 "; only settled states are restorable");
        residency_[i] = r;
    }
    stats_ = s.stats;
    checkConsistency();
}

} // namespace tier
} // namespace serve
} // namespace cxlpnm
