/**
 * @file
 * Prices and completes tier migrations on the serving layer's
 * iteration clock.
 *
 * Migrations are iteration-synchronous: every transfer issued while
 * step k runs (demotions from the policy, promotions for far
 * attention, far-born block writes) completes by the end of step k,
 * and the step's duration is extended by exactly the link time the
 * decode-ahead pipeline could not hide. All tier traffic - migrated
 * blocks, streamed far KV, and the iteration's own activation bytes -
 * shares one CxlLinkParams budget, so migrations contend with
 * inference instead of riding a free side channel.
 *
 * Within a step the in-flight residency states are real: a block
 * freed between issue and endIteration() (preemption, prefix-cache
 * eviction) drops out of the ledger via the manager's observer and
 * its completion is skipped (counted abandoned by the pool).
 */

#ifndef CXLPNM_SERVE_TIER_MIGRATION_ENGINE_HH
#define CXLPNM_SERVE_TIER_MIGRATION_ENGINE_HH

#include <cstdint>
#include <vector>

#include "cxl/link.hh"
#include "serve/tier/prefetcher.hh"
#include "serve/tier/tier_config.hh"
#include "serve/tier/tiered_pool.hh"
#include "sim/trace.hh"

namespace cxlpnm
{
namespace serve
{
namespace tier
{

/** One iteration's tier activity (metrics feed, reset per step). */
struct TierIterationStats
{
    std::uint64_t promotions = 0;
    std::uint64_t demotions = 0;
    std::uint64_t farBornBlocks = 0;
    std::uint64_t migratedBytes = 0;
    std::uint64_t streamedBytes = 0;
    double exposedSeconds = 0.0;
    double hiddenSeconds = 0.0;
};

/** Issues, prices, and retires one iteration's tier transfers. */
class MigrationEngine
{
  public:
    MigrationEngine(TieredBlockPool &pool, const TierConfig &cfg,
                    std::uint64_t block_bytes,
                    std::uint32_t num_layers);

    /** Migration spans land on @p migration_track. */
    void
    attachTracer(trace::Tracer *t, trace::TrackId migration_track)
    {
        tracer_ = t;
        migTrack_ = migration_track;
    }

    /** Start step k at clock @p now; resets the per-step ledger. */
    void beginIteration(double now);

    /** Near -> far, frame handed over immediately (victim buffer). */
    void demote(BlockId b);
    /** Far -> near into a free frame; data arrives within the step. */
    void promote(BlockId b);
    /** A block allocated directly far: its KV is written across the
     *  link as it is produced this step. */
    void noteFarBorn(BlockId b);

    /**
     * Price the step: @p stream_bytes of far KV read for attention
     * plus everything issued above plus @p inference_bytes of
     * activation traffic, pipelined against @p compute_seconds by the
     * prefetcher. Returns the exposed seconds the iteration extends
     * by.
     */
    double priceIteration(double compute_seconds,
                          std::uint64_t stream_bytes,
                          std::uint64_t inference_bytes);

    /**
     * Complete the step at clock @p end: flip every still-in-flight
     * issued migration to its settled tier (blocks freed since issue
     * are skipped - the pool already counted them abandoned) and emit
     * migration spans. Returns the step's ledger.
     */
    const TierIterationStats &endIteration(double end);

    /** Migrations issued this step and not yet completed. */
    std::size_t pendingMigrations() const { return issued_.size(); }

    const DecodeAheadPrefetcher &prefetcher() const { return prefetch_; }
    const cxl::TransferAccount &traffic() const { return traffic_; }

    /** Cumulative accounting (warm-state snapshot/restore); legal
     *  only between iterations (pendingMigrations() == 0, panic
     *  otherwise). Per-step scratch needs no capture - beginIteration
     *  resets it. */
    struct State
    {
        cxl::TransferAccount traffic;
        std::uint64_t promotions = 0;
        std::uint64_t demotions = 0;
        std::uint64_t farBorn = 0;
        std::uint64_t migratedBytes = 0;
        std::uint64_t streamedBytes = 0;
        double exposedSeconds = 0.0;
        double hiddenSeconds = 0.0;
    };

    State state() const;
    void restore(const State &s);

    // --- cumulative counters (report feed) ---
    std::uint64_t promotions() const { return promotionsTotal_; }
    std::uint64_t demotions() const { return demotionsTotal_; }
    std::uint64_t farBornBlocks() const { return farBornTotal_; }
    std::uint64_t migratedBytes() const { return migratedBytesTotal_; }
    std::uint64_t streamedBytes() const { return streamedBytesTotal_; }
    double exposedSeconds() const { return exposedTotal_; }
    double hiddenSeconds() const { return hiddenTotal_; }

  private:
    struct Issued
    {
        BlockId block;
        bool isPromote;
    };

    TieredBlockPool &pool_;
    TierConfig cfg_;
    std::uint64_t blockBytes_;
    DecodeAheadPrefetcher prefetch_;
    cxl::TransferAccount traffic_;

    double iterStart_ = 0.0;
    bool priced_ = false;
    std::vector<Issued> issued_;
    TierIterationStats iter_;

    std::uint64_t promotionsTotal_ = 0;
    std::uint64_t demotionsTotal_ = 0;
    std::uint64_t farBornTotal_ = 0;
    std::uint64_t migratedBytesTotal_ = 0;
    std::uint64_t streamedBytesTotal_ = 0;
    double exposedTotal_ = 0.0;
    double hiddenTotal_ = 0.0;

    trace::Tracer *tracer_ = nullptr;
    trace::TrackId migTrack_ = trace::InvalidTrack;
};

} // namespace tier
} // namespace serve
} // namespace cxlpnm

#endif // CXLPNM_SERVE_TIER_MIGRATION_ENGINE_HH
