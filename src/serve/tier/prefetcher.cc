#include "serve/tier/prefetcher.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace cxlpnm
{
namespace serve
{
namespace tier
{

DecodeAheadPrefetcher::DecodeAheadPrefetcher(std::uint32_t num_layers,
                                             bool enabled)
    : numLayers_(num_layers), enabled_(enabled)
{
    fatal_if(num_layers == 0, "prefetcher needs at least one layer");
}

DecodeAheadPrefetcher::Overlap
DecodeAheadPrefetcher::overlap(double compute_seconds,
                               double link_seconds) const
{
    panic_if(compute_seconds < 0.0 || link_seconds < 0.0,
             "negative seconds in prefetch overlap");
    Overlap o;
    if (link_seconds <= 0.0)
        return o;
    if (!enabled_ || numLayers_ <= 1) {
        // No pipeline: the fetches serialize ahead of the compute.
        o.exposedSeconds = link_seconds;
        return o;
    }
    const double L = static_cast<double>(numLayers_);
    const double cl = compute_seconds / L;
    const double fl = link_seconds / L;
    const double pipeline_end = fl + cl + (L - 1.0) * std::max(cl, fl);
    const double end = std::max({pipeline_end, link_seconds,
                                 compute_seconds});
    o.exposedSeconds = end - compute_seconds;
    o.hiddenSeconds = link_seconds - o.exposedSeconds;
    panic_if(o.exposedSeconds < 0.0 || o.hiddenSeconds < -1e-12,
             "prefetch overlap produced negative time");
    o.hiddenSeconds = std::max(o.hiddenSeconds, 0.0);
    return o;
}

} // namespace tier
} // namespace serve
} // namespace cxlpnm
