#include "serve/kv_block_manager.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace cxlpnm
{
namespace serve
{

KvBlockManager::KvBlockManager(std::uint64_t capacity_bytes,
                               std::uint64_t block_bytes)
    : blockBytes_(block_bytes)
{
    fatal_if(capacity_bytes == 0,
             "KV block manager needs a non-zero capacity");
    fatal_if(block_bytes == 0,
             "KV block manager needs a non-zero block size");
    const std::uint64_t n = capacity_bytes / block_bytes;
    fatal_if(n == 0, "KV capacity ", capacity_bytes,
             " bytes smaller than one ", block_bytes, "-byte block");
    refs_.assign(static_cast<std::size_t>(n), 0);
    freeList_.reserve(refs_.size());
    for (std::size_t i = refs_.size(); i-- > 0;)
        freeList_.push_back(static_cast<BlockId>(i));
}

BlockId
KvBlockManager::tryAllocate()
{
    if (freeList_.empty())
        return InvalidBlock;
    const BlockId b = freeList_.back();
    freeList_.pop_back();
    refs_[b] = 1;
    ++allocations_;
    peakUsed_ = std::max(peakUsed_, usedBlocks());
    if (observer_ != nullptr)
        observer_->onAllocated(b);
    return b;
}

void
KvBlockManager::addRef(BlockId b)
{
    fatal_if(b >= refs_.size(), "addRef on block ", b, " of ",
             refs_.size());
    fatal_if(refs_[b] == 0, "addRef on free block ", b);
    ++refs_[b];
}

bool
KvBlockManager::release(BlockId b)
{
    fatal_if(b >= refs_.size(), "release of block ", b, " of ",
             refs_.size());
    fatal_if(refs_[b] == 0, "double release of block ", b);
    if (--refs_[b] > 0)
        return false;
    freeList_.push_back(b);
    ++frees_;
    if (observer_ != nullptr)
        observer_->onFreed(b);
    return true;
}

KvBlockStats
KvBlockManager::stats() const
{
    KvBlockStats s;
    s.totalBlocks = totalBlocks();
    s.freeBlocks = freeBlocks();
    s.usedBlocks = usedBlocks();
    s.peakUsedBlocks = peakUsedBlocks();
    s.blockBytes = blockBytes_;
    s.allocations = allocations_;
    s.frees = frees_;
    return s;
}

KvBlockManager::State
KvBlockManager::state() const
{
    State s;
    s.refs = refs_;
    s.freeList = freeList_;
    s.peakUsed = peakUsed_;
    s.allocations = allocations_;
    s.frees = frees_;
    return s;
}

void
KvBlockManager::restore(const State &s)
{
    fatal_if(s.refs.size() != refs_.size(),
             "block-manager restore: state has ", s.refs.size(),
             " blocks, manager has ", refs_.size());
    fatal_if(s.freeList.size() > s.refs.size(),
             "block-manager restore: free list larger than the pool");
    refs_ = s.refs;
    freeList_ = s.freeList;
    peakUsed_ = s.peakUsed;
    allocations_ = s.allocations;
    frees_ = s.frees;
}

std::uint32_t
KvBlockManager::refCount(BlockId b) const
{
    fatal_if(b >= refs_.size(), "refCount of block ", b, " of ",
             refs_.size());
    return refs_[b];
}

} // namespace serve
} // namespace cxlpnm
