#include "serve/request_generator.hh"

#include <algorithm>
#include <cmath>
#include <string>

#include "sim/logging.hh"

namespace cxlpnm
{
namespace serve
{

LengthDistribution
LengthDistribution::fixed(std::uint64_t n)
{
    LengthDistribution d;
    d.kind = Kind::Fixed;
    d.lo = d.hi = n;
    return d;
}

LengthDistribution
LengthDistribution::uniform(std::uint64_t lo, std::uint64_t hi)
{
    LengthDistribution d;
    d.kind = Kind::Uniform;
    d.lo = lo;
    d.hi = hi;
    return d;
}

LengthDistribution
LengthDistribution::bimodal(std::uint64_t lo, std::uint64_t hi,
                            double p_lo)
{
    LengthDistribution d;
    d.kind = Kind::Bimodal;
    d.lo = lo;
    d.hi = hi;
    d.pLo = p_lo;
    return d;
}

std::uint64_t
LengthDistribution::max() const
{
    return kind == Kind::Fixed ? lo : hi;
}

std::uint64_t
LengthDistribution::draw(SplitMix64 &rng) const
{
    fatal_if(lo == 0, "token lengths must be positive");
    fatal_if(kind != Kind::Fixed && hi < lo,
             "length distribution with hi < lo");
    switch (kind) {
      case Kind::Fixed:
        return lo;
      case Kind::Uniform:
        return lo + rng.nextBelow(hi - lo + 1);
      case Kind::Bimodal:
        return rng.nextDouble() < pLo ? lo : hi;
    }
    return lo;
}

std::uint64_t
TraceConfig::maxInputTokens() const
{
    return longContext ? longCtxMaxTokens : input.max();
}

void
TraceConfig::validate(std::uint64_t max_positions,
                      std::uint64_t total_kv_tokens) const
{
    auto reject = [](std::string why) {
        throw TraceConfigError(std::move(why));
    };
    if (longContext) {
        if (longCtxMinTokens == 0)
            reject("long-context mode needs a positive minimum "
                   "prompt length");
        if (longCtxMaxTokens < longCtxMinTokens)
            reject("long-context prompt range is inverted: max " +
                   std::to_string(longCtxMaxTokens) + " < min " +
                   std::to_string(longCtxMinTokens));
    }
    const std::uint64_t worst = maxInputTokens() + output.max();
    if (max_positions > 0 && worst > max_positions)
        reject("worst-case context of " + std::to_string(worst) +
               " tokens exceeds the model's " +
               std::to_string(max_positions) + " positions");
    if (total_kv_tokens > 0 && worst > total_kv_tokens)
        reject("worst-case context of " + std::to_string(worst) +
               " tokens exceeds the two-tier KV capacity of " +
               std::to_string(total_kv_tokens) + " tokens");
}

RequestGenerator::RequestGenerator(const TraceConfig &cfg)
    : cfg_(cfg), rng_(cfg.seed)
{
    fatal_if(cfg_.requestsPerSec <= 0.0,
             "arrival rate must be positive");
    fatal_if(cfg_.prefixReuse < 0.0 || cfg_.prefixReuse > 1.0,
             "prefix reuse must be a probability, got ",
             cfg_.prefixReuse);
    fatal_if(cfg_.prefixReuse > 0.0 && cfg_.prefixGroups == 0,
             "shared-prefix mode needs at least one group");
    if (cfg_.longContext) {
        // Bounds are checked with the typed error even when the
        // caller skipped validate(): a malformed range must never
        // reach the draw.
        cfg_.validate(0, 0);
        cfg_.input = LengthDistribution::uniform(
            cfg_.longCtxMinTokens, cfg_.longCtxMaxTokens);
    }
}

ServeRequest
RequestGenerator::next()
{
    fatal_if(exhausted(), "request trace exhausted");

    if (produced_ > 0) {
        // The first request arrives at t=0; later ones after a gap.
        double gap = 0.0;
        const double mean_gap = 1.0 / cfg_.requestsPerSec;
        switch (cfg_.arrivals) {
          case ArrivalProcess::Poisson:
            // Inverse-CDF exponential; nextDouble() < 1 keeps log(.)
            // finite.
            gap = -std::log(1.0 - rng_.nextDouble()) * mean_gap;
            break;
          case ArrivalProcess::Fixed:
            gap = mean_gap;
            break;
        }
        // The header promises monotonically non-decreasing arrivals;
        // enforce it against pathological configs (e.g. an extreme
        // rate driving mean_gap to a denormal or the draw to NaN).
        fatal_if(!(gap >= 0.0), "negative or NaN arrival gap ", gap);
        clock_ += gap;
    }

    ServeRequest req;
    req.id = produced_;
    req.arrivalSeconds = clock_;
    req.inputTokens = cfg_.input.draw(rng_);
    req.outputTokens = cfg_.output.draw(rng_);
    // Shared-prefix draws happen only when the mode is on, so the
    // default config consumes exactly the pre-existing RNG stream.
    if (cfg_.prefixReuse > 0.0 &&
        rng_.nextDouble() < cfg_.prefixReuse) {
        req.prefixGroup = 1 + rng_.nextBelow(cfg_.prefixGroups);
        req.sharedPrefixTokens =
            std::min(cfg_.prefixTokens, req.inputTokens);
    }
    ++produced_;
    return req;
}

std::vector<ServeRequest>
RequestGenerator::generate(const TraceConfig &cfg)
{
    RequestGenerator gen(cfg);
    std::vector<ServeRequest> trace;
    trace.reserve(cfg.numRequests);
    while (!gen.exhausted())
        trace.push_back(gen.next());
    return trace;
}

} // namespace serve
} // namespace cxlpnm
