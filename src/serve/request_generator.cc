#include "serve/request_generator.hh"

#include <algorithm>
#include <cmath>
#include <string>

#include "sim/logging.hh"

namespace cxlpnm
{
namespace serve
{

LengthDistribution
LengthDistribution::fixed(std::uint64_t n)
{
    LengthDistribution d;
    d.kind = Kind::Fixed;
    d.lo = d.hi = n;
    return d;
}

LengthDistribution
LengthDistribution::uniform(std::uint64_t lo, std::uint64_t hi)
{
    LengthDistribution d;
    d.kind = Kind::Uniform;
    d.lo = lo;
    d.hi = hi;
    return d;
}

LengthDistribution
LengthDistribution::bimodal(std::uint64_t lo, std::uint64_t hi,
                            double p_lo)
{
    LengthDistribution d;
    d.kind = Kind::Bimodal;
    d.lo = lo;
    d.hi = hi;
    d.pLo = p_lo;
    return d;
}

std::uint64_t
LengthDistribution::max() const
{
    return kind == Kind::Fixed ? lo : hi;
}

std::uint64_t
LengthDistribution::draw(SplitMix64 &rng) const
{
    fatal_if(lo == 0, "token lengths must be positive");
    fatal_if(kind != Kind::Fixed && hi < lo,
             "length distribution with hi < lo");
    switch (kind) {
      case Kind::Fixed:
        return lo;
      case Kind::Uniform:
        return lo + rng.nextBelow(hi - lo + 1);
      case Kind::Bimodal:
        return rng.nextDouble() < pLo ? lo : hi;
    }
    return lo;
}

std::uint64_t
TraceConfig::maxInputTokens() const
{
    return longContext ? longCtxMaxTokens : input.max();
}

void
TraceConfig::validate(std::uint64_t max_positions,
                      std::uint64_t total_kv_tokens) const
{
    auto reject = [](std::string why) {
        throw TraceConfigError(std::move(why));
    };
    if (longContext) {
        if (longCtxMinTokens == 0)
            reject("long-context mode needs a positive minimum "
                   "prompt length");
        if (longCtxMaxTokens < longCtxMinTokens)
            reject("long-context prompt range is inverted: max " +
                   std::to_string(longCtxMaxTokens) + " < min " +
                   std::to_string(longCtxMinTokens));
    }
    if (arrivals == ArrivalProcess::Bursty) {
        if (!(burstOnSeconds > 0.0))
            reject("bursty arrivals need a positive mean ON-phase "
                   "duration, got " + std::to_string(burstOnSeconds));
        if (burstOffSeconds < 0.0)
            reject("bursty arrivals: mean OFF-phase duration must be "
                   ">= 0, got " + std::to_string(burstOffSeconds));
        if (burstOffRateFraction < 0.0 || burstOffRateFraction > 1.0)
            reject("bursty arrivals: OFF-phase rate fraction must be "
                   "in [0, 1], got " +
                   std::to_string(burstOffRateFraction));
    }
    if (numTenants == 0)
        reject("numTenants must be >= 1 (every request needs an "
               "owner)");
    if (ttftDeadlineSeconds < 0.0)
        reject("ttftDeadlineSeconds must be >= 0, got " +
               std::to_string(ttftDeadlineSeconds));
    const std::uint64_t worst = maxInputTokens() + output.max();
    if (max_positions > 0 && worst > max_positions)
        reject("worst-case context of " + std::to_string(worst) +
               " tokens exceeds the model's " +
               std::to_string(max_positions) + " positions");
    if (total_kv_tokens > 0 && worst > total_kv_tokens)
        reject("worst-case context of " + std::to_string(worst) +
               " tokens exceeds the two-tier KV capacity of " +
               std::to_string(total_kv_tokens) + " tokens");
}

RequestGenerator::RequestGenerator(const TraceConfig &cfg)
    : cfg_(cfg), rng_(cfg.seed)
{
    fatal_if(cfg_.requestsPerSec <= 0.0,
             "arrival rate must be positive");
    fatal_if(cfg_.prefixReuse < 0.0 || cfg_.prefixReuse > 1.0,
             "prefix reuse must be a probability, got ",
             cfg_.prefixReuse);
    fatal_if(cfg_.prefixReuse > 0.0 && cfg_.prefixGroups == 0,
             "shared-prefix mode needs at least one group");
    if (cfg_.longContext) {
        // Bounds are checked with the typed error even when the
        // caller skipped validate(): a malformed range must never
        // reach the draw.
        cfg_.validate(0, 0);
        cfg_.input = LengthDistribution::uniform(
            cfg_.longCtxMinTokens, cfg_.longCtxMaxTokens);
    }
    if (cfg_.arrivals == ArrivalProcess::Bursty ||
        cfg_.numTenants != 1 || cfg_.ttftDeadlineSeconds != 0.0) {
        // Same typed-error guarantee for the overload-mode knobs.
        cfg_.validate(0, 0);
    }
    if (cfg_.arrivals == ArrivalProcess::Bursty) {
        // Start in the ON phase with an exponentially drawn dwell.
        phaseEndClock_ =
            -std::log(1.0 - rng_.nextDouble()) * cfg_.burstOnSeconds;
    }
}

void
RequestGenerator::advancePhase()
{
    phaseOn_ = !phaseOn_;
    const double mean =
        phaseOn_ ? cfg_.burstOnSeconds : cfg_.burstOffSeconds;
    // A zero-mean phase (burstOffSeconds = 0) has zero dwell: the
    // stream degenerates to pure Poisson at the ON rate.
    const double dwell = mean > 0.0
        ? -std::log(1.0 - rng_.nextDouble()) * mean
        : 0.0;
    phaseEndClock_ += dwell;
}

ServeRequest
RequestGenerator::next()
{
    fatal_if(exhausted(), "request trace exhausted");

    if (produced_ > 0) {
        // The first request arrives at t=0; later ones after a gap.
        double gap = 0.0;
        const double mean_gap = 1.0 / cfg_.requestsPerSec;
        switch (cfg_.arrivals) {
          case ArrivalProcess::Poisson:
            // Inverse-CDF exponential; nextDouble() < 1 keeps log(.)
            // finite.
            gap = -std::log(1.0 - rng_.nextDouble()) * mean_gap;
            break;
          case ArrivalProcess::Fixed:
            gap = mean_gap;
            break;
          case ArrivalProcess::Bursty: {
            // Sample the next arrival of the two-phase MMPP. An
            // exponential gap that crosses the phase boundary is
            // discarded and redrawn from the boundary — memoryless,
            // so this is the exact arrival law. A silent OFF phase
            // (rate 0) jumps straight to its end.
            double t = clock_;
            for (;;) {
                const double rate = phaseOn_
                    ? cfg_.requestsPerSec
                    : cfg_.requestsPerSec * cfg_.burstOffRateFraction;
                if (rate <= 0.0) {
                    t = phaseEndClock_;
                    advancePhase();
                    continue;
                }
                const double g =
                    -std::log(1.0 - rng_.nextDouble()) / rate;
                if (t + g <= phaseEndClock_) {
                    t += g;
                    break;
                }
                t = phaseEndClock_;
                advancePhase();
            }
            gap = t - clock_;
            break;
          }
        }
        // The header promises monotonically non-decreasing arrivals;
        // enforce it against pathological configs (e.g. an extreme
        // rate driving mean_gap to a denormal or the draw to NaN).
        fatal_if(!(gap >= 0.0), "negative or NaN arrival gap ", gap);
        clock_ += gap;
    }

    ServeRequest req;
    req.id = produced_;
    req.arrivalSeconds = clock_;
    req.inputTokens = cfg_.input.draw(rng_);
    req.outputTokens = cfg_.output.draw(rng_);
    // Shared-prefix draws happen only when the mode is on, so the
    // default config consumes exactly the pre-existing RNG stream.
    if (cfg_.prefixReuse > 0.0 &&
        rng_.nextDouble() < cfg_.prefixReuse) {
        req.prefixGroup = 1 + rng_.nextBelow(cfg_.prefixGroups);
        req.sharedPrefixTokens =
            std::min(cfg_.prefixTokens, req.inputTokens);
    }
    // Tenant draw only in multi-tenant mode (stream stability);
    // the deadline stamp consumes no randomness.
    if (cfg_.numTenants > 1)
        req.tenant = rng_.nextBelow(cfg_.numTenants);
    req.deadlineSeconds = cfg_.ttftDeadlineSeconds;
    ++produced_;
    return req;
}

std::vector<ServeRequest>
RequestGenerator::generate(const TraceConfig &cfg)
{
    RequestGenerator gen(cfg);
    std::vector<ServeRequest> trace;
    trace.reserve(cfg.numRequests);
    while (!gen.exhausted())
        trace.push_back(gen.next());
    return trace;
}

} // namespace serve
} // namespace cxlpnm
