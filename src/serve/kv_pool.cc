#include "serve/kv_pool.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace cxlpnm
{
namespace serve
{

KvCachePool::KvCachePool(std::uint64_t capacity_bytes)
    : capacity_(capacity_bytes)
{
    fatal_if(capacity_ == 0, "KV pool needs a non-zero capacity");
}

bool
KvCachePool::tryReserve(std::uint64_t bytes)
{
    if (!canReserve(bytes))
        return false;
    reserved_ += bytes;
    peakReserved_ = std::max(peakReserved_, reserved_);
    return true;
}

void
KvCachePool::reserve(std::uint64_t bytes)
{
    fatal_if(!tryReserve(bytes), "KV pool overflow: ", bytes,
             " bytes requested, ", capacity_ - reserved_, " free of ",
             capacity_);
}

void
KvCachePool::release(std::uint64_t bytes)
{
    fatal_if(bytes > reserved_, "KV pool release of ", bytes,
             " bytes exceeds ", reserved_, " reserved");
    reserved_ -= bytes;
}

} // namespace serve
} // namespace cxlpnm
