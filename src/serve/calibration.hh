/**
 * @file
 * Calibrated fast-forward execution for the serving simulator.
 *
 * The serving layer prices every iteration through one of two
 * interchangeable pricers:
 *
 *  - cycle: exact per-shape timings from the event-driven engine
 *    (core::pnmSumStageSeconds / pnmGenStageSeconds), memoized so each
 *    distinct stage shape is simulated once. This is the reference the
 *    fleet-scale analytic mode is validated against.
 *
 *  - analytic (fast-forward): the fitted BatchCostModel the scheduler
 *    has always used — piecewise-linear sum curve plus a two-point
 *    decode line. Orders of magnitude cheaper per iteration and
 *    explicitly approximate.
 *
 * calibrateWithAnchors() fits the analytic model and then validates it
 * on *held-out* anchor shapes (stage lengths not used in the fit),
 * reporting the relative error per anchor and the maximum across them.
 * The resulting CalibrationProfile can be saved to and reloaded from a
 * deterministic text file, so a fleet sweep pays the engine-calibration
 * cost once. Execution mode is selected per device group: a mixed
 * appliance keeps one cell cycle-accurate while the rest fast-forward.
 */

#ifndef CXLPNM_SERVE_CALIBRATION_HH
#define CXLPNM_SERVE_CALIBRATION_HH

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/platform.hh"
#include "llm/model_config.hh"
#include "serve/cost_model.hh"
#include "sim/logging.hh"

namespace cxlpnm
{
namespace serve
{

/**
 * A fast-forward configuration that cannot be used: unknown execution
 * mode, malformed or mismatched calibration profile. Thrown instead of
 * a fatal so drivers can print a message and exit cleanly (the same
 * contract as TraceConfigError).
 */
class CalibrationError : public FatalError
{
  public:
    using FatalError::FatalError;
};

/** How a device group prices its iterations. */
enum class ExecMode
{
    Cycle,    // exact memoized engine stage runs (the reference)
    Analytic, // fitted cost model (fast-forward, approximate)
    Mixed,    // group 0 cycle-accurate, every other group analytic
};

const char *execModeName(ExecMode m);
/** Parse "cycle" / "analytic" / "mixed"; throws CalibrationError. */
ExecMode execModeByName(const std::string &name);

/**
 * Per-iteration pricing interface consulted by BatchScheduler when a
 * pricer is attached; with none attached the scheduler prices through
 * its own BatchCostModel, bit-identical to the pre-fast-forward code.
 */
class IterationPricer
{
  public:
    virtual ~IterationPricer() = default;

    /** Prefill with @p cached_tokens already resident (>= 1 token is
     *  always computed), matching BatchCostModel::prefillSeconds. */
    virtual double prefillSeconds(std::uint64_t l_in,
                                  std::uint64_t cached_tokens) const = 0;

    /** One decode iteration over members attending @p contexts. */
    virtual double decodeIterationSeconds(
        const std::vector<std::uint64_t> &contexts) const = 0;
};

/** The fitted cost model behind the IterationPricer interface; prices
 *  identically to a scheduler with no pricer attached. */
class AnalyticPricer : public IterationPricer
{
  public:
    explicit AnalyticPricer(const BatchCostModel &cost) : cost_(cost) {}

    double
    prefillSeconds(std::uint64_t l_in,
                   std::uint64_t cached_tokens) const override
    {
        return cost_.prefillSeconds(l_in, cached_tokens);
    }

    double
    decodeIterationSeconds(
        const std::vector<std::uint64_t> &contexts) const override
    {
        return cost_.decodeIterationSeconds(contexts);
    }

  private:
    BatchCostModel cost_;
};

/**
 * Cycle-accurate pricing: every stage shape is timed by the
 * event-driven engine itself and memoized (a shape is one
 * deterministic simulation, so the first run's result is exact for
 * all repeats). Prefill prices the uncached suffix as one exact sum
 * stage. A decode iteration charges one full exact gen stage for the
 * first member (weights stream once for the whole batch) plus each
 * further member's marginal cost over the minimal 2-token stage —
 * i.e. its cycle-measured KV traffic. Compute floor, host work and
 * model-parallel comm constants are shared with the analytic model so
 * the two modes differ only in the engine-vs-fit stage timings.
 *
 * The engine simulates the full prompt, so this pricer is only
 * practical at chat-scale contexts; long-context (tiered) workloads
 * must run analytic.
 */
class CyclePricer : public IterationPricer
{
  public:
    CyclePricer(const llm::ModelConfig &model,
                const core::PnmPlatformConfig &pcfg,
                const BatchCostModel &cost, int tensor_shard = 1);

    double prefillSeconds(std::uint64_t l_in,
                          std::uint64_t cached_tokens) const override;
    double decodeIterationSeconds(
        const std::vector<std::uint64_t> &contexts) const override;

    /** Distinct stage shapes actually simulated so far. */
    std::uint64_t engineStageRuns() const { return stageRuns_; }
    /** Stage lookups served from the memo instead. */
    std::uint64_t memoHits() const { return memoHits_; }

  private:
    double sumStage(std::uint64_t l) const;
    double genStage(std::uint64_t c) const;

    llm::ModelConfig model_;
    core::PnmPlatformConfig pcfg_;
    BatchCostModel cost_;
    int shard_;

    mutable std::unordered_map<std::uint64_t, double> sumMemo_;
    mutable std::unordered_map<std::uint64_t, double> genMemo_;
    mutable std::uint64_t stageRuns_ = 0;
    mutable std::uint64_t memoHits_ = 0;
};

/** One held-out validation point of a calibration. */
struct CalibrationAnchor
{
    /** 's' = sum (prefill) stage, 'g' = gen (decode) stage. */
    char kind = 's';
    std::uint64_t tokens = 0;
    /** Exact engine timing of the stage. */
    double engineSeconds = 0.0;
    /** The fitted model's prediction for the same shape. */
    double modelSeconds = 0.0;
    /** |model - engine| / engine. */
    double relErr = 0.0;
};

/**
 * A fitted analytic cost model plus the evidence for trusting it: the
 * held-out anchors it was validated on and a fingerprint of what it
 * was calibrated for (model / platform / shard / context bound), so a
 * stored profile can refuse to price a different configuration.
 */
struct CalibrationProfile
{
    std::string modelName;
    int channelGrouping = 1;
    int tensorShard = 1;
    std::uint64_t maxContext = 0;

    BatchCostModel cost;
    std::vector<CalibrationAnchor> anchors;

    /** Largest relative error across the anchors (0 when none). */
    double maxRelErr() const;
};

/**
 * Calibrate the analytic model as calibratePnmCostModel does but with
 * the sum curve refit on a denser eighth-point grid (the stock
 * three-point curve misses the engine's curvature below hi/2 by more
 * than the fast-forward error budget), then validate it on held-out
 * sum/gen anchors at token counts the fit never saw. Deterministic;
 * anchors exclude model-parallel comm (both sides of the comparison
 * are single-shard stage times).
 */
CalibrationProfile
calibrateWithAnchors(const llm::ModelConfig &model,
                     const core::PnmPlatformConfig &pcfg,
                     std::uint64_t max_context, int tensor_shard = 1);

/** Deterministic text form of a profile (line-oriented, fixed
 *  precision; byte-identical for identical profiles). */
std::string profileToText(const CalibrationProfile &p);

/** Parse profileToText output; throws CalibrationError on anything
 *  malformed. */
CalibrationProfile profileFromText(const std::string &text);

/** Write/read a profile file; throws CalibrationError on I/O or parse
 *  failure. loadProfile also rejects a fingerprint mismatch against
 *  the requested configuration. */
void saveProfile(const CalibrationProfile &p, const std::string &path);
CalibrationProfile loadProfile(const std::string &path,
                               const llm::ModelConfig &model,
                               const core::PnmPlatformConfig &pcfg,
                               std::uint64_t max_context,
                               int tensor_shard);

} // namespace serve
} // namespace cxlpnm

#endif // CXLPNM_SERVE_CALIBRATION_HH
