#include "serve/snapshot.hh"

#include <cinttypes>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <string>

namespace cxlpnm
{
namespace serve
{

namespace
{

constexpr const char *kMagicV1 = "cxlpnm-snapshot-v1";
constexpr const char *kMagicV2 = "cxlpnm-snapshot-v2";
constexpr const char *kMagicV3 = "cxlpnm-snapshot-v3";

void
appendf(std::string &out, const char *fmt, ...)
{
    char buf[512];
    va_list ap;
    va_start(ap, fmt);
    std::vsnprintf(buf, sizeof buf, fmt, ap);
    va_end(ap);
    out += buf;
}

/** Strings are length-prefixed ("<len> <bytes>") so names with spaces
 *  survive; newlines cannot appear in any serialized name. */
void
appendStr(std::string &out, const std::string &s)
{
    appendf(out, "%zu ", s.size());
    out += s;
}

void
appendRequest(std::string &out, const ServeRequest &r, int version)
{
    appendf(out,
            "r %" PRIu64 " %.17g %" PRIu64 " %" PRIu64 " %" PRIu64
            " %" PRIu64 " %" PRIu64 " %" PRIu64 " %d %" PRIu64
            " %" PRIu64 " %.17g %.17g %.17g",
            r.id, r.arrivalSeconds, r.inputTokens, r.outputTokens,
            r.prefixGroup, r.sharedPrefixTokens, r.cachedPrefixTokens,
            r.preemptions, static_cast<int>(r.state), r.generated,
            r.retries, r.admitSeconds, r.firstTokenSeconds,
            r.finishSeconds);
    if (version >= 2)
        appendf(out, " %" PRIu64 " %.17g", r.tenant,
                r.deadlineSeconds);
    if (version >= 3)
        appendf(out, " %" PRIu64, r.prefilledTokens);
    out += '\n';
}

void
appendRequests(std::string &out, const char *key,
               const std::vector<ServeRequest> &v, int version)
{
    appendf(out, "%s %zu\n", key, v.size());
    for (const ServeRequest &r : v)
        appendRequest(out, r, version);
}

void
appendU64Vec(std::string &out, const char *key,
             const std::vector<std::uint64_t> &v)
{
    appendf(out, "%s %zu", key, v.size());
    for (std::uint64_t x : v)
        appendf(out, " %" PRIu64, x);
    out += '\n';
}

void
appendHistogram(std::string &out, const char *key,
                const stats::Histogram::State &h)
{
    appendf(out,
            "%s %.17g %u %" PRIu64 " %" PRIu64 " %" PRIu64
            " %.17g %zu",
            key, h.hi, h.extensions, h.underflow, h.overflow, h.count,
            h.sum, h.buckets.size());
    for (std::uint64_t b : h.buckets)
        appendf(out, " %" PRIu64, b);
    out += '\n';
}

void
appendAverage(std::string &out, const char *key,
              const stats::Average::State &a)
{
    appendf(out, "%s %.17g %.17g %.17g %" PRIu64 "\n", key, a.sum,
            a.min, a.max, a.count);
}

/** Line cursor over the snapshot text; throws on premature end. */
struct LineReader
{
    const std::string &text;
    std::size_t pos = 0;

    std::string
    next()
    {
        if (pos >= text.size())
            throw SnapshotError("snapshot truncated");
        const std::size_t nl = text.find('\n', pos);
        const std::size_t end =
            nl == std::string::npos ? text.size() : nl;
        std::string line = text.substr(pos, end - pos);
        pos = nl == std::string::npos ? text.size() : nl + 1;
        return line;
    }
};

/** Token cursor over one line: typed extraction with the position
 *  tracking length-prefixed strings need. Owns the line - callers
 *  feed it LineReader::next() temporaries. */
struct Tokens
{
    std::string line;
    std::size_t pos = 0;

    void
    skipSpace()
    {
        while (pos < line.size() && line[pos] == ' ')
            ++pos;
    }

    double
    f64()
    {
        skipSpace();
        char *end = nullptr;
        const double v = std::strtod(line.c_str() + pos, &end);
        if (end == line.c_str() + pos)
            throw SnapshotError("snapshot: bad number in '" + line +
                                "'");
        pos = static_cast<std::size_t>(end - line.c_str());
        return v;
    }

    std::uint64_t
    u64()
    {
        skipSpace();
        char *end = nullptr;
        const unsigned long long v =
            std::strtoull(line.c_str() + pos, &end, 10);
        if (end == line.c_str() + pos)
            throw SnapshotError("snapshot: bad integer in '" + line +
                                "'");
        pos = static_cast<std::size_t>(end - line.c_str());
        return v;
    }

    std::string
    str()
    {
        const std::size_t len = static_cast<std::size_t>(u64());
        if (pos >= line.size() || line[pos] != ' ')
            throw SnapshotError("snapshot: bad string in '" + line +
                                "'");
        ++pos; // the single separator space
        if (pos + len > line.size())
            throw SnapshotError("snapshot: string overruns line '" +
                                line + "'");
        std::string s = line.substr(pos, len);
        pos += len;
        return s;
    }

    void
    done()
    {
        skipSpace();
        if (pos != line.size())
            throw SnapshotError("snapshot: trailing junk in '" + line +
                                "'");
    }
};

/** Next line must start with "<key> "; returns a cursor past the key. */
Tokens
expect(const std::string &line, const char *key)
{
    const std::string prefix = std::string(key);
    if (line != prefix &&
        line.rfind(prefix + " ", 0) != 0)
        throw SnapshotError("snapshot: expected '" + prefix +
                            "', got '" + line + "'");
    Tokens t{line, prefix.size()};
    return t;
}

ServeRequest
parseRequest(const std::string &line, int version)
{
    Tokens t = expect(line, "r");
    ServeRequest r;
    r.id = t.u64();
    r.arrivalSeconds = t.f64();
    r.inputTokens = t.u64();
    r.outputTokens = t.u64();
    r.prefixGroup = t.u64();
    r.sharedPrefixTokens = t.u64();
    r.cachedPrefixTokens = t.u64();
    r.preemptions = t.u64();
    // Shed is a v2 state; a v1 document may not contain it.
    const std::uint64_t max_state = version >= 2
        ? static_cast<std::uint64_t>(RequestState::Shed)
        : static_cast<std::uint64_t>(RequestState::Failed);
    const std::uint64_t st = t.u64();
    if (st > max_state)
        throw SnapshotError("snapshot: bad request state in '" + line +
                            "'");
    r.state = static_cast<RequestState>(st);
    r.generated = t.u64();
    r.retries = t.u64();
    r.admitSeconds = t.f64();
    r.firstTokenSeconds = t.f64();
    r.finishSeconds = t.f64();
    if (version >= 2) {
        r.tenant = t.u64();
        r.deadlineSeconds = t.f64();
    }
    if (version >= 3)
        r.prefilledTokens = t.u64();
    t.done();
    return r;
}

std::vector<ServeRequest>
parseRequests(LineReader &in, const char *key, int version)
{
    Tokens t = expect(in.next(), key);
    const std::size_t n = static_cast<std::size_t>(t.u64());
    t.done();
    std::vector<ServeRequest> v;
    v.reserve(n);
    for (std::size_t i = 0; i < n; ++i)
        v.push_back(parseRequest(in.next(), version));
    return v;
}

std::vector<std::uint64_t>
parseU64Vec(const std::string &line, const char *key)
{
    Tokens t = expect(line, key);
    const std::size_t n = static_cast<std::size_t>(t.u64());
    std::vector<std::uint64_t> v;
    v.reserve(n);
    for (std::size_t i = 0; i < n; ++i)
        v.push_back(t.u64());
    t.done();
    return v;
}

stats::Histogram::State
parseHistogram(const std::string &line, const char *key)
{
    Tokens t = expect(line, key);
    stats::Histogram::State h;
    h.hi = t.f64();
    h.extensions = static_cast<std::uint32_t>(t.u64());
    h.underflow = t.u64();
    h.overflow = t.u64();
    h.count = t.u64();
    h.sum = t.f64();
    const std::size_t n = static_cast<std::size_t>(t.u64());
    h.buckets.reserve(n);
    for (std::size_t i = 0; i < n; ++i)
        h.buckets.push_back(t.u64());
    t.done();
    return h;
}

stats::Average::State
parseAverage(const std::string &line, const char *key)
{
    Tokens t = expect(line, key);
    stats::Average::State a;
    a.sum = t.f64();
    a.min = t.f64();
    a.max = t.f64();
    a.count = t.u64();
    t.done();
    return a;
}

bool
parseFlag(const std::string &line, const char *key)
{
    Tokens t = expect(line, key);
    const std::uint64_t v = t.u64();
    t.done();
    if (v > 1)
        throw SnapshotError("snapshot: bad flag in '" + line + "'");
    return v != 0;
}

std::uint64_t
parseU64Field(const std::string &line, const char *key)
{
    Tokens t = expect(line, key);
    const std::uint64_t v = t.u64();
    t.done();
    return v;
}

void
appendGroup(std::string &out, const SchedulerState &g, int version)
{
    appendf(out, "clock %.17g %.17g %.17g\n", g.clock, g.lastArrival,
            g.degradedUntil);
    appendRequests(out, "queue", g.queue, version);
    appendRequests(out, "batch", g.batch, version);
    appendRequests(out, "finished", g.finished, version);
    appendRequests(out, "rejected", g.rejected, version);
    appendRequests(out, "failed", g.failed, version);
    if (version >= 2)
        appendRequests(out, "shed", g.shed, version);
    appendf(out, "kvpool %" PRIu64 " %" PRIu64 " %" PRIu64 "\n",
            g.kvPool.capacityBytes, g.kvPool.reservedBytes,
            g.kvPool.peakReservedBytes);

    appendf(out, "paged %d\n", g.paged ? 1 : 0);
    if (g.paged) {
        appendf(out,
                "blocks %" PRIu64 " %" PRIu64 " %" PRIu64 "\n",
                g.blocks.peakUsed, g.blocks.allocations,
                g.blocks.frees);
        std::vector<std::uint64_t> refs(g.blocks.refs.begin(),
                                        g.blocks.refs.end());
        appendU64Vec(out, "refs", refs);
        std::vector<std::uint64_t> free(g.blocks.freeList.begin(),
                                        g.blocks.freeList.end());
        appendU64Vec(out, "free", free);
        appendf(out,
                "prefix %zu %" PRIu64 " %" PRIu64 " %" PRIu64 "\n",
                g.prefix.entries.size(), g.prefix.seq,
                g.prefix.evictions, g.prefix.insertions);
        for (const PrefixCache::EntryState &e : g.prefix.entries)
            appendf(out,
                    "e %" PRIu64 " %" PRIu32 " %" PRIu64 " %" PRIu32
                    " %" PRIu64 " %d\n",
                    e.hash, e.block, e.parent, e.children, e.lastUse,
                    e.partialTail ? 1 : 0);
        appendf(out, "held %zu\n", g.heldBlocks.size());
        for (const auto &h : g.heldBlocks) {
            appendf(out, "h %" PRIu64 " %zu", h.first,
                    h.second.size());
            for (BlockId b : h.second)
                appendf(out, " %" PRIu32, b);
            out += '\n';
        }
    }

    appendf(out, "tiered %d\n", g.tiered ? 1 : 0);
    if (g.tiered) {
        std::vector<std::uint64_t> res(g.tierPool.residency.begin(),
                                       g.tierPool.residency.end());
        appendU64Vec(out, "residency", res);
        const tier::TierStats &s = g.tierPool.stats;
        appendf(out,
                "tierstats %" PRIu64 " %" PRIu64 " %" PRIu64
                " %" PRIu64 " %" PRIu64 " %" PRIu64 " %" PRIu64
                " %" PRIu64 "\n",
                s.nearCapacity, s.farCapacity, s.nearBlocks,
                s.farBlocks, s.promoteInFlight, s.demoteInFlight,
                s.peakFarBlocks, s.abandonedMigrations);
        const tier::MigrationEngine::State &m = g.migration;
        appendf(out,
                "migration %" PRIu64 " %" PRIu64 " %" PRIu64
                " %" PRIu64 " %" PRIu64 " %" PRIu64 " %" PRIu64
                " %" PRIu64 " %" PRIu64 " %.17g %.17g\n",
                m.traffic.downBytes, m.traffic.upBytes,
                m.traffic.downTransfers, m.traffic.upTransfers,
                m.promotions, m.demotions, m.farBorn, m.migratedBytes,
                m.streamedBytes, m.exposedSeconds, m.hiddenSeconds);
        appendf(out, "meta %zu\n", g.blockMeta.size());
        for (const tier::TierBlockMeta &bm : g.blockMeta)
            appendf(out,
                    "m %" PRIu64 " %" PRIu32 " %d %" PRIu64 "\n",
                    bm.owner, bm.chainPos, bm.writeHead ? 1 : 0,
                    bm.lastTouch);
        appendf(out, "pin %" PRIu64 "\n", g.pinViolations);
    }

    appendf(out, "seqs %" PRIu64 " %" PRIu64 " %" PRIu64 "\n",
            g.iterationSeq, g.lastAbandoned, g.lastPinViolations);
    if (version >= 2)
        appendf(out, "brownout %" PRIu64 " %" PRIu64 " %" PRIu64 "\n",
                g.brownout.level, g.brownout.highStreak,
                g.brownout.lowStreak);
    if (version >= 3)
        appendRequests(out, "handoffs", g.handoffs, version);
}

SchedulerState
parseGroup(LineReader &in, int version)
{
    SchedulerState g;
    {
        Tokens t = expect(in.next(), "clock");
        g.clock = t.f64();
        g.lastArrival = t.f64();
        g.degradedUntil = t.f64();
        t.done();
    }
    g.queue = parseRequests(in, "queue", version);
    g.batch = parseRequests(in, "batch", version);
    g.finished = parseRequests(in, "finished", version);
    g.rejected = parseRequests(in, "rejected", version);
    g.failed = parseRequests(in, "failed", version);
    if (version >= 2)
        g.shed = parseRequests(in, "shed", version);
    {
        Tokens t = expect(in.next(), "kvpool");
        g.kvPool.capacityBytes = t.u64();
        g.kvPool.reservedBytes = t.u64();
        g.kvPool.peakReservedBytes = t.u64();
        t.done();
    }

    g.paged = parseFlag(in.next(), "paged");
    if (g.paged) {
        {
            Tokens t = expect(in.next(), "blocks");
            g.blocks.peakUsed = t.u64();
            g.blocks.allocations = t.u64();
            g.blocks.frees = t.u64();
            t.done();
        }
        for (std::uint64_t v : parseU64Vec(in.next(), "refs"))
            g.blocks.refs.push_back(
                static_cast<std::uint32_t>(v));
        for (std::uint64_t v : parseU64Vec(in.next(), "free"))
            g.blocks.freeList.push_back(static_cast<BlockId>(v));
        {
            Tokens t = expect(in.next(), "prefix");
            const std::size_t n = static_cast<std::size_t>(t.u64());
            g.prefix.seq = t.u64();
            g.prefix.evictions = t.u64();
            g.prefix.insertions = t.u64();
            t.done();
            g.prefix.entries.reserve(n);
            for (std::size_t i = 0; i < n; ++i) {
                Tokens e = expect(in.next(), "e");
                PrefixCache::EntryState es;
                es.hash = e.u64();
                es.block = static_cast<BlockId>(e.u64());
                es.parent = e.u64();
                es.children = static_cast<std::uint32_t>(e.u64());
                es.lastUse = e.u64();
                es.partialTail = e.u64() != 0;
                e.done();
                g.prefix.entries.push_back(es);
            }
        }
        {
            Tokens t = expect(in.next(), "held");
            const std::size_t n = static_cast<std::size_t>(t.u64());
            t.done();
            g.heldBlocks.reserve(n);
            for (std::size_t i = 0; i < n; ++i) {
                Tokens h = expect(in.next(), "h");
                const std::uint64_t id = h.u64();
                const std::size_t nb =
                    static_cast<std::size_t>(h.u64());
                std::vector<BlockId> blocks;
                blocks.reserve(nb);
                for (std::size_t b = 0; b < nb; ++b)
                    blocks.push_back(static_cast<BlockId>(h.u64()));
                h.done();
                g.heldBlocks.emplace_back(id, std::move(blocks));
            }
        }
    }

    g.tiered = parseFlag(in.next(), "tiered");
    if (g.tiered) {
        for (std::uint64_t v : parseU64Vec(in.next(), "residency")) {
            if (v > 4)
                throw SnapshotError("snapshot: bad residency value");
            g.tierPool.residency.push_back(
                static_cast<std::uint8_t>(v));
        }
        {
            Tokens t = expect(in.next(), "tierstats");
            tier::TierStats &s = g.tierPool.stats;
            s.nearCapacity = t.u64();
            s.farCapacity = t.u64();
            s.nearBlocks = t.u64();
            s.farBlocks = t.u64();
            s.promoteInFlight = t.u64();
            s.demoteInFlight = t.u64();
            s.peakFarBlocks = t.u64();
            s.abandonedMigrations = t.u64();
            t.done();
        }
        {
            Tokens t = expect(in.next(), "migration");
            tier::MigrationEngine::State &m = g.migration;
            m.traffic.downBytes = t.u64();
            m.traffic.upBytes = t.u64();
            m.traffic.downTransfers = t.u64();
            m.traffic.upTransfers = t.u64();
            m.promotions = t.u64();
            m.demotions = t.u64();
            m.farBorn = t.u64();
            m.migratedBytes = t.u64();
            m.streamedBytes = t.u64();
            m.exposedSeconds = t.f64();
            m.hiddenSeconds = t.f64();
            t.done();
        }
        {
            Tokens t = expect(in.next(), "meta");
            const std::size_t n = static_cast<std::size_t>(t.u64());
            t.done();
            g.blockMeta.reserve(n);
            for (std::size_t i = 0; i < n; ++i) {
                Tokens m = expect(in.next(), "m");
                tier::TierBlockMeta bm;
                bm.owner = m.u64();
                bm.chainPos = static_cast<std::uint32_t>(m.u64());
                bm.writeHead = m.u64() != 0;
                bm.lastTouch = m.u64();
                m.done();
                g.blockMeta.push_back(bm);
            }
        }
        g.pinViolations = parseU64Field(in.next(), "pin");
    }

    {
        Tokens t = expect(in.next(), "seqs");
        g.iterationSeq = t.u64();
        g.lastAbandoned = t.u64();
        g.lastPinViolations = t.u64();
        t.done();
    }
    if (version >= 2) {
        Tokens t = expect(in.next(), "brownout");
        g.brownout.level = t.u64();
        g.brownout.highStreak = t.u64();
        g.brownout.lowStreak = t.u64();
        t.done();
    }
    if (version >= 3)
        g.handoffs = parseRequests(in, "handoffs", version);
    return g;
}

void
appendMetrics(std::string &out, const ServeMetrics::State &m,
              int version)
{
    out += "metrics\n";
    appendHistogram(out, "token_latency", m.tokenLatency);
    appendHistogram(out, "ttft", m.ttft);
    appendAverage(out, "batch_size", m.batchSize);
    appendAverage(out, "queue_depth", m.queueDepth);
    appendAverage(out, "kv_utilization", m.kvUtilization);
    appendAverage(out, "kv_fragmentation", m.kvFragmentation);
    appendf(out,
            "counts %" PRIu64 " %" PRIu64 " %" PRIu64 " %" PRIu64
            " %" PRIu64 " %" PRIu64 " %" PRIu64 " %" PRIu64
            " %" PRIu64 "\n",
            m.completed, m.rejected, m.tokens, m.sloMetRequests,
            m.sloMetTokens, m.iterFailures, m.retries, m.failed,
            m.devices);
    appendf(out, "scalars %.17g %.17g %.17g %.17g %.17g\n",
            m.degradedSeconds, m.peakKvUtil, m.kvUtilSecondsIntegral,
            m.kvBlockSecondsIntegral, m.kvIntervalSeconds);
    appendf(out,
            "pagedcounts %" PRIu64 " %" PRIu64 " %" PRIu64 " %" PRIu64
            " %" PRIu64 " %" PRIu64 " %" PRIu64 " %" PRIu64
            " %" PRIu64 "\n",
            m.prefixLookups, m.prefixHits, m.sharedTokens,
            m.cachedTokens, m.cowCopies, m.cacheEvictions,
            m.preemptions, m.recomputeTokens, m.peakKvBlocks);
    appendf(out, "tier %d\n", m.tierEnabled ? 1 : 0);
    if (m.tierEnabled) {
        appendf(out,
                "tiercounts %" PRIu64 " %" PRIu64 " %" PRIu64
                " %" PRIu64 " %" PRIu64 " %" PRIu64 " %" PRIu64
                " %" PRIu64 " %" PRIu64 "\n",
                m.tierDemotions, m.tierPromotions, m.tierFarBorn,
                m.tierMigratedBytes, m.tierStreamedBytes,
                m.tierAbandoned, m.tierPinViolations,
                m.peakNearBlocks, m.peakFarBlocks);
        appendf(out, "tierscalars %.17g %.17g\n",
                m.tierExposedSeconds, m.tierHiddenSeconds);
    }
    if (version >= 2) {
        appendf(out, "overload %d\n", m.overloadEnabled ? 1 : 0);
        appendf(out,
                "overloadcounts %" PRIu64 " %" PRIu64 " %" PRIu64
                " %" PRIu64 " %" PRIu64 " %" PRIu64 "\n",
                m.submitted, m.shed, m.timedOut, m.throttled,
                m.brownoutPeak, m.breakerOpens);
        appendf(out, "tenants %zu\n", m.tenants.size());
        for (const ServeReport::TenantBreakdown &tb : m.tenants)
            appendf(out,
                    "tn %" PRIu64 " %" PRIu64 " %" PRIu64 " %" PRIu64
                    " %" PRIu64 " %" PRIu64 "\n",
                    tb.tenant, tb.submitted, tb.completed, tb.shed,
                    tb.timedOut, tb.throttled);
    }
    if (version >= 3) {
        appendf(out, "disagg %d\n", m.disaggEnabled ? 1 : 0);
        if (m.disaggEnabled) {
            appendf(out,
                    "disaggcounts %" PRIu64 " %" PRIu64 " %" PRIu64
                    " %" PRIu64 "\n",
                    m.chunkedPrefills, m.chunkIterations, m.handovers,
                    m.handoverBytes);
            appendf(out, "disaggscalars %.17g\n",
                    m.handoverLinkSeconds);
        }
    }
}

ServeMetrics::State
parseMetrics(LineReader &in, int version)
{
    if (in.next() != "metrics")
        throw SnapshotError("snapshot: missing metrics section");
    ServeMetrics::State m;
    m.tokenLatency = parseHistogram(in.next(), "token_latency");
    m.ttft = parseHistogram(in.next(), "ttft");
    m.batchSize = parseAverage(in.next(), "batch_size");
    m.queueDepth = parseAverage(in.next(), "queue_depth");
    m.kvUtilization = parseAverage(in.next(), "kv_utilization");
    m.kvFragmentation = parseAverage(in.next(), "kv_fragmentation");
    {
        Tokens t = expect(in.next(), "counts");
        m.completed = t.u64();
        m.rejected = t.u64();
        m.tokens = t.u64();
        m.sloMetRequests = t.u64();
        m.sloMetTokens = t.u64();
        m.iterFailures = t.u64();
        m.retries = t.u64();
        m.failed = t.u64();
        m.devices = t.u64();
        t.done();
    }
    {
        Tokens t = expect(in.next(), "scalars");
        m.degradedSeconds = t.f64();
        m.peakKvUtil = t.f64();
        m.kvUtilSecondsIntegral = t.f64();
        m.kvBlockSecondsIntegral = t.f64();
        m.kvIntervalSeconds = t.f64();
        t.done();
    }
    {
        Tokens t = expect(in.next(), "pagedcounts");
        m.prefixLookups = t.u64();
        m.prefixHits = t.u64();
        m.sharedTokens = t.u64();
        m.cachedTokens = t.u64();
        m.cowCopies = t.u64();
        m.cacheEvictions = t.u64();
        m.preemptions = t.u64();
        m.recomputeTokens = t.u64();
        m.peakKvBlocks = t.u64();
        t.done();
    }
    m.tierEnabled = parseFlag(in.next(), "tier");
    if (m.tierEnabled) {
        Tokens t = expect(in.next(), "tiercounts");
        m.tierDemotions = t.u64();
        m.tierPromotions = t.u64();
        m.tierFarBorn = t.u64();
        m.tierMigratedBytes = t.u64();
        m.tierStreamedBytes = t.u64();
        m.tierAbandoned = t.u64();
        m.tierPinViolations = t.u64();
        m.peakNearBlocks = t.u64();
        m.peakFarBlocks = t.u64();
        t.done();
        Tokens s = expect(in.next(), "tierscalars");
        m.tierExposedSeconds = s.f64();
        m.tierHiddenSeconds = s.f64();
        s.done();
    }
    if (version >= 2) {
        m.overloadEnabled = parseFlag(in.next(), "overload");
        {
            Tokens t = expect(in.next(), "overloadcounts");
            m.submitted = t.u64();
            m.shed = t.u64();
            m.timedOut = t.u64();
            m.throttled = t.u64();
            m.brownoutPeak = t.u64();
            m.breakerOpens = t.u64();
            t.done();
        }
        const std::size_t n_tenants = static_cast<std::size_t>(
            parseU64Field(in.next(), "tenants"));
        m.tenants.reserve(n_tenants);
        for (std::size_t i = 0; i < n_tenants; ++i) {
            Tokens t = expect(in.next(), "tn");
            ServeReport::TenantBreakdown tb;
            tb.tenant = t.u64();
            tb.submitted = t.u64();
            tb.completed = t.u64();
            tb.shed = t.u64();
            tb.timedOut = t.u64();
            tb.throttled = t.u64();
            t.done();
            m.tenants.push_back(tb);
        }
    }
    if (version >= 3) {
        m.disaggEnabled = parseFlag(in.next(), "disagg");
        if (m.disaggEnabled) {
            Tokens t = expect(in.next(), "disaggcounts");
            m.chunkedPrefills = t.u64();
            m.chunkIterations = t.u64();
            m.handovers = t.u64();
            m.handoverBytes = t.u64();
            t.done();
            Tokens s = expect(in.next(), "disaggscalars");
            m.handoverLinkSeconds = s.f64();
            s.done();
        }
    }
    return m;
}

} // namespace

std::string
snapshotToText(const ServingSnapshot &s)
{
    return renderSnapshot(s, 3);
}

std::string
renderSnapshot(const ServingSnapshot &s, int version)
{
    if (version != 1 && version != 2 && version != 3)
        throw SnapshotError("unsupported snapshot version " +
                            std::to_string(version));
    std::string out;
    out += version >= 3 ? kMagicV3 : version >= 2 ? kMagicV2
                                                  : kMagicV1;
    out += '\n';
    appendf(out, "groups %zu\n", s.groups.size());
    for (std::size_t g = 0; g < s.groups.size(); ++g) {
        appendf(out, "group %zu\n", g);
        appendGroup(out, s.groups[g], version);
    }
    appendMetrics(out, s.metrics, version);

    appendf(out, "faults %d\n", s.hasFaults ? 1 : 0);
    if (s.hasFaults) {
        appendf(out, "sites %zu\n", s.faults.sites.size());
        for (const auto &site : s.faults.sites) {
            out += "site ";
            appendStr(out, site.name);
            appendf(out, " %" PRIu64 " %" PRIu64 " %zu",
                    site.rngState, site.accesses, site.fired.size());
            for (const bool f : site.fired)
                appendf(out, " %d", f ? 1 : 0);
            out += '\n';
        }
        appendf(out, "flog %zu\n", s.faults.log.size());
        for (const auto &r : s.faults.log) {
            appendf(out, "f %" PRIu64 " %" PRIu64 " %d %" PRIu64 " ",
                    r.seq, static_cast<std::uint64_t>(r.tick),
                    static_cast<int>(r.kind), r.access);
            appendStr(out, r.site);
            out += '\n';
        }
    }

    appendf(out, "trace %d\n", s.hasTrace ? 1 : 0);
    if (s.hasTrace) {
        appendf(out, "eventdispatch %d\n",
                s.trace.eventDispatch ? 1 : 0);
        appendf(out, "tracks %zu\n", s.trace.tracks.size());
        for (const auto &t : s.trace.tracks) {
            out += "t ";
            appendStr(out, t.name);
            out += ' ';
            appendStr(out, t.category);
            out += '\n';
        }
        appendf(out, "records %zu\n", s.trace.records.size());
        for (const auto &r : s.trace.records) {
            appendf(out,
                    "x %d %" PRIu32 " %" PRIu64 " %" PRIu64
                    " %.17g ",
                    static_cast<int>(r.ph), r.track,
                    static_cast<std::uint64_t>(r.ts),
                    static_cast<std::uint64_t>(r.dur), r.value);
            appendStr(out, r.name);
            out += '\n';
        }
    }

    appendf(out, "generator %d\n", s.hasGenerator ? 1 : 0);
    if (s.hasGenerator) {
        appendf(out, "gen %" PRIu64 " %" PRIu64 " %.17g",
                s.generator.rngState, s.generator.produced,
                s.generator.clock);
        if (version >= 2)
            appendf(out, " %d %.17g", s.generator.phaseOn ? 1 : 0,
                    s.generator.phaseEndClock);
        out += '\n';
    }

    if (version >= 2) {
        appendf(out, "overloadfront %d\n", s.hasOverload ? 1 : 0);
        if (s.hasOverload) {
            appendf(out, "buckets %zu\n",
                    s.overload.admission.buckets.size());
            for (const auto &[tenant, b] :
                 s.overload.admission.buckets)
                appendf(out, "b %" PRIu64 " %.17g %.17g\n", tenant,
                        b.fill, b.lastRefill);
            appendf(out, "breakers %zu\n", s.overload.breakers.size());
            for (const CircuitBreaker::State &b : s.overload.breakers) {
                appendf(out,
                        "k %d %" PRIu64 " %" PRIu64 " %.17g %d %zu",
                        b.state, b.openCount, b.trips, b.reopenAt,
                        b.probeOutstanding ? 1 : 0, b.window.size());
                for (const std::uint8_t w : b.window)
                    appendf(out, " %u", w);
                out += '\n';
            }
            appendRequests(out, "frontrejected", s.overload.rejected,
                           version);
        }
    }

    if (version >= 3) {
        appendf(out, "disaggfront %d\n", s.hasDisagg ? 1 : 0);
        if (s.hasDisagg) {
            const cxl::TransferAccount &t = s.disagg.traffic;
            appendf(out,
                    "handovertraffic %" PRIu64 " %" PRIu64 " %" PRIu64
                    " %" PRIu64 "\n",
                    t.downBytes, t.upBytes, t.downTransfers,
                    t.upTransfers);
            appendf(out, "handoverfront %" PRIu64 " %.17g\n",
                    s.disagg.handovers, s.disagg.linkSeconds);
        }
    }

    out += "end\n";
    return out;
}

ServingSnapshot
snapshotFromText(const std::string &text)
{
    LineReader in{text};
    const std::string magic = in.next();
    int version = 0;
    if (magic == kMagicV3)
        version = 3;
    else if (magic == kMagicV2)
        version = 2; // older snapshots restore with default disagg
                     // (and, for v1, overload) state
    else if (magic == kMagicV1)
        version = 1;
    else
        throw SnapshotError("not a serving snapshot (bad magic)");

    ServingSnapshot s;
    const std::size_t n_groups =
        static_cast<std::size_t>(parseU64Field(in.next(), "groups"));
    s.groups.reserve(n_groups);
    for (std::size_t g = 0; g < n_groups; ++g) {
        if (parseU64Field(in.next(), "group") != g)
            throw SnapshotError("snapshot: group index mismatch");
        s.groups.push_back(parseGroup(in, version));
    }
    s.metrics = parseMetrics(in, version);

    s.hasFaults = parseFlag(in.next(), "faults");
    if (s.hasFaults) {
        const std::size_t n_sites = static_cast<std::size_t>(
            parseU64Field(in.next(), "sites"));
        s.faults.sites.reserve(n_sites);
        for (std::size_t i = 0; i < n_sites; ++i) {
            Tokens t = expect(in.next(), "site");
            fault::FaultInjector::SiteState site;
            site.name = t.str();
            site.rngState = t.u64();
            site.accesses = t.u64();
            const std::size_t nf =
                static_cast<std::size_t>(t.u64());
            site.fired.reserve(nf);
            for (std::size_t f = 0; f < nf; ++f)
                site.fired.push_back(t.u64() != 0);
            t.done();
            s.faults.sites.push_back(std::move(site));
        }
        const std::size_t n_log = static_cast<std::size_t>(
            parseU64Field(in.next(), "flog"));
        s.faults.log.reserve(n_log);
        for (std::size_t i = 0; i < n_log; ++i) {
            Tokens t = expect(in.next(), "f");
            fault::FaultInjector::Record r;
            r.seq = t.u64();
            r.tick = static_cast<Tick>(t.u64());
            // GroupFailStop/IterationSlow are v2 kinds.
            const std::uint64_t max_kind = version >= 2
                ? static_cast<std::uint64_t>(
                      fault::FaultKind::IterationSlow)
                : static_cast<std::uint64_t>(
                      fault::FaultKind::IterationFail);
            const std::uint64_t kind = t.u64();
            if (kind > max_kind)
                throw SnapshotError("snapshot: bad fault kind");
            r.kind = static_cast<fault::FaultKind>(kind);
            r.access = t.u64();
            r.site = t.str();
            t.done();
            s.faults.log.push_back(std::move(r));
        }
    }

    s.hasTrace = parseFlag(in.next(), "trace");
    if (s.hasTrace) {
        s.trace.eventDispatch =
            parseFlag(in.next(), "eventdispatch");
        const std::size_t n_tracks = static_cast<std::size_t>(
            parseU64Field(in.next(), "tracks"));
        s.trace.tracks.reserve(n_tracks);
        for (std::size_t i = 0; i < n_tracks; ++i) {
            Tokens t = expect(in.next(), "t");
            trace::Tracer::Track tr;
            tr.name = t.str();
            tr.category = t.str();
            t.done();
            s.trace.tracks.push_back(std::move(tr));
        }
        const std::size_t n_records = static_cast<std::size_t>(
            parseU64Field(in.next(), "records"));
        s.trace.records.reserve(n_records);
        for (std::size_t i = 0; i < n_records; ++i) {
            Tokens t = expect(in.next(), "x");
            trace::Tracer::Record r;
            const std::uint64_t ph = t.u64();
            if (ph >
                static_cast<std::uint64_t>(
                    trace::Tracer::Phase::Counter))
                throw SnapshotError("snapshot: bad trace phase");
            r.ph = static_cast<trace::Tracer::Phase>(ph);
            r.track = static_cast<trace::TrackId>(t.u64());
            r.ts = static_cast<Tick>(t.u64());
            r.dur = static_cast<Tick>(t.u64());
            r.value = t.f64();
            r.name = t.str();
            t.done();
            s.trace.records.push_back(std::move(r));
        }
    }

    s.hasGenerator = parseFlag(in.next(), "generator");
    if (s.hasGenerator) {
        Tokens t = expect(in.next(), "gen");
        s.generator.rngState = t.u64();
        s.generator.produced = t.u64();
        s.generator.clock = t.f64();
        if (version >= 2) {
            const std::uint64_t on = t.u64();
            if (on > 1)
                throw SnapshotError("snapshot: bad generator phase");
            s.generator.phaseOn = on != 0;
            s.generator.phaseEndClock = t.f64();
        }
        t.done();
    }

    if (version >= 2) {
        s.hasOverload = parseFlag(in.next(), "overloadfront");
        if (s.hasOverload) {
            const std::size_t n_buckets = static_cast<std::size_t>(
                parseU64Field(in.next(), "buckets"));
            s.overload.admission.buckets.reserve(n_buckets);
            for (std::size_t i = 0; i < n_buckets; ++i) {
                Tokens t = expect(in.next(), "b");
                const std::uint64_t tenant = t.u64();
                TokenBucket::State b;
                b.fill = t.f64();
                b.lastRefill = t.f64();
                t.done();
                s.overload.admission.buckets.emplace_back(tenant, b);
            }
            const std::size_t n_breakers = static_cast<std::size_t>(
                parseU64Field(in.next(), "breakers"));
            s.overload.breakers.reserve(n_breakers);
            for (std::size_t i = 0; i < n_breakers; ++i) {
                Tokens t = expect(in.next(), "k");
                CircuitBreaker::State b;
                b.state = static_cast<int>(t.u64());
                if (b.state >
                    static_cast<int>(BreakerState::HalfOpen))
                    throw SnapshotError(
                        "snapshot: bad breaker state");
                b.openCount = t.u64();
                b.trips = t.u64();
                b.reopenAt = t.f64();
                b.probeOutstanding = t.u64() != 0;
                const std::size_t nw =
                    static_cast<std::size_t>(t.u64());
                b.window.reserve(nw);
                for (std::size_t w = 0; w < nw; ++w) {
                    const std::uint64_t v = t.u64();
                    if (v > 1)
                        throw SnapshotError(
                            "snapshot: bad breaker window bit");
                    b.window.push_back(
                        static_cast<std::uint8_t>(v));
                }
                t.done();
                s.overload.breakers.push_back(std::move(b));
            }
            s.overload.rejected =
                parseRequests(in, "frontrejected", version);
        }
    }

    if (version >= 3) {
        s.hasDisagg = parseFlag(in.next(), "disaggfront");
        if (s.hasDisagg) {
            Tokens t = expect(in.next(), "handovertraffic");
            s.disagg.traffic.downBytes = t.u64();
            s.disagg.traffic.upBytes = t.u64();
            s.disagg.traffic.downTransfers = t.u64();
            s.disagg.traffic.upTransfers = t.u64();
            t.done();
            Tokens f = expect(in.next(), "handoverfront");
            s.disagg.handovers = f.u64();
            s.disagg.linkSeconds = f.f64();
            f.done();
        }
    }

    if (in.next() != "end")
        throw SnapshotError("snapshot: missing end marker");
    return s;
}

void
saveSnapshot(const ServingSnapshot &s, const std::string &path)
{
    const std::string text = snapshotToText(s);
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (!f)
        throw SnapshotError("cannot write snapshot '" + path + "'");
    std::fwrite(text.data(), 1, text.size(), f);
    std::fclose(f);
}

ServingSnapshot
loadSnapshot(const std::string &path)
{
    std::FILE *f = std::fopen(path.c_str(), "r");
    if (!f)
        throw SnapshotError("cannot read snapshot '" + path + "'");
    std::string text;
    char buf[4096];
    std::size_t n;
    while ((n = std::fread(buf, 1, sizeof buf, f)) > 0)
        text.append(buf, n);
    std::fclose(f);
    return snapshotFromText(text);
}

} // namespace serve
} // namespace cxlpnm
