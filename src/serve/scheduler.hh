/**
 * @file
 * Iteration-level continuous batching for one model instance
 * (Orca/vLLM-style): the decode loop runs one token step at a time,
 * new requests join the running batch between steps (paying their
 * prefill as they join), and finished requests retire immediately,
 * freeing their KV reservation for the next admission.
 *
 * Admission is KV-capacity-aware and strictly FCFS: requests are
 * considered in arrival order and ONLY the queue head is ever
 * admitted. When the head does not fit (KV or batch slot), admission
 * stops - later requests never jump a blocked head, even when they
 * would fit. Head-of-line blocking is the price of the no-starvation
 * guarantee; the paged allocator below shrinks how often it is paid.
 *
 * Two KV backends gate admission:
 *
 *  - Worst-case byte pool (the default, `paged.enabled = false`):
 *    a request reserves `kvCacheBytes(in + out)` up front, so the
 *    batch can never outgrow the module but capacity is charged for
 *    generation that may never happen.
 *
 *  - Paged block manager (`paged.enabled = true`): capacity is spent
 *    in `blockTokens`-sized blocks on the *current* context only,
 *    growing lazily during decode. Requests sharing a prompt prefix
 *    reuse full blocks through the PrefixCache (copy-on-write on the
 *    partial tail), and cached prompt tokens skip the sum stage of
 *    prefill. When growth overflows the pool the scheduler preempts
 *    the lowest-priority (latest-arrival) running request: its blocks
 *    free immediately, it re-enters the queue at its FCFS position,
 *    and it recomputes from its prompt on re-admission - charged
 *    through the ordinary prefill cost model and surfaced as
 *    recompute tokens in the metrics.
 *
 * With `continuousBatching = false` the same loop degenerates to
 * one-request-at-a-time serving - the baseline the tests compare
 * against. Everything remains seeded-deterministic: the paged path
 * adds no RNG and no ordering that depends on memory layout or
 * thread count.
 */

#ifndef CXLPNM_SERVE_SCHEDULER_HH
#define CXLPNM_SERVE_SCHEDULER_HH

#include <cstdint>
#include <deque>
#include <memory>
#include <unordered_map>
#include <utility>
#include <vector>

#include "serve/cost_model.hh"
#include "serve/kv_block_manager.hh"
#include "serve/kv_pool.hh"
#include "serve/metrics.hh"
#include "serve/overload.hh"
#include "serve/prefix_cache.hh"
#include "serve/request.hh"
#include "serve/tier/migration_engine.hh"
#include "serve/tier/tier_config.hh"
#include "serve/tier/tier_policy.hh"
#include "serve/tier/tiered_pool.hh"
#include "sim/fault.hh"
#include "sim/trace.hh"

namespace cxlpnm
{
namespace serve
{

class IterationPricer; // serve/calibration.hh
class CircuitBreaker;  // serve/breaker.hh

/** Recovery policy when a batch iteration fails (injected fault). */
struct RasPolicy
{
    /**
     * Restarts a request survives before it is abandoned as Failed.
     * A failed iteration loses all in-progress generation: members
     * restart from their prompt on the next admission.
     */
    std::uint64_t maxRequestRetries = 2;
    /**
     * Dead time after a failed iteration (device reset + program
     * reload as seen from the serving layer). The group is routed
     * around by the dispatcher for this window.
     */
    double degradedCooldownSeconds = 0.5;
    /**
     * Dead time after a GroupFailStop fault: the whole group is out
     * for a real outage, not a reset blip. Same recovery path as an
     * iteration failure, much longer cooldown - long enough for a
     * circuit breaker watching the group to trip.
     */
    double failStopCooldownSeconds = 5.0;
    /**
     * Duration multiplier applied to an iteration hit by an
     * IterationSlow fault (a straggler device): the iteration's work
     * survives but takes this many times longer, which a breaker with
     * a latency threshold counts as a breach.
     */
    double stragglerSlowdownFactor = 4.0;
};

/** Paged KV-cache policy (off by default: worst-case byte pool). */
struct PagedKvConfig
{
    bool enabled = false;
    /** KV slots per block; block bytes = kvCacheBytes(blockTokens). */
    std::uint32_t blockTokens = 16;
    /**
     * Evict the latest-arrival running request when decode growth
     * overflows the pool (recompute-on-resume). With preemption off,
     * starved members stall in place until blocks free up; a fully
     * stalled batch with nothing else to run is a fatal deadlock.
     */
    bool preemption = true;
    /** Share full prompt-prefix blocks through the PrefixCache. */
    bool prefixCaching = true;
    /**
     * CXL-far tier behind the block manager. With `tier.farBlocks`
     * > 0 the manager's capacity grows by that many blocks and the
     * near tier (the byte capacity handed to the scheduler) becomes a
     * frame-count constraint: overflow demotes blocks through the
     * migration engine instead of blocking admission. All-default
     * (farBlocks = 0) is bit-identical to the untiered scheduler.
     */
    tier::TierConfig tier;
};

/** Scheduling policy knobs. */
struct SchedulerConfig
{
    /** Iteration batch cap (requests decoded per step). */
    std::size_t maxBatch = 32;
    /** False: admit only into an empty batch (serial baseline). */
    bool continuousBatching = true;
    /** Recovery policy under fault injection. */
    RasPolicy ras;
    /** Paged KV backend (block granularity, prefix cache, preempt). */
    PagedKvConfig paged;
    /** Deadline-aware load shedding (off by default: inert). */
    ShedConfig shed;
    /** Brownout ladder under queue pressure (off by default). */
    BrownoutConfig brownout;
    /**
     * Chunked prefill budget in prompt tokens per iteration; 0 (the
     * default) prefills whole prompts at join time, bit-identical to
     * the pre-chunking scheduler. With a budget set, a prompt whose
     * uncached remainder exceeds it is prefilled across several
     * iterations (interleaving with decode steps instead of
     * monopolizing them) and its first token - and TTFT sample - lands
     * at the iteration the *last* chunk completes.
     */
    std::uint64_t chunkTokens = 0;
};

/**
 * One consistent view of the KV backend's occupancy for metrics,
 * tracer counters, and reports (replaces ad-hoc getter fishing).
 */
struct KvSnapshot
{
    /** Byte-pool ledger (always valid). */
    KvPoolStats pool;
    /** Block ledger; zero in byte mode. */
    KvBlockStats blocks;
    /** Residency ledger; zero with the far tier off. */
    tier::TierStats tier;
    bool paged = false;
    bool tiered = false;
};

/**
 * One scheduler's full mutable state between iterations, for warm-state
 * snapshot/restore (see serve/snapshot for serialization). Captured by
 * BatchScheduler::state() and applied by restore(); configuration
 * (model, cost model, scheduler config, KV capacity) is NOT state -
 * the restore target must be constructed identically.
 */
struct SchedulerState
{
    double clock = 0.0;
    double lastArrival = 0.0;
    double degradedUntil = 0.0;

    std::vector<ServeRequest> queue;
    std::vector<ServeRequest> batch;
    std::vector<ServeRequest> finished;
    std::vector<ServeRequest> rejected;
    std::vector<ServeRequest> failed;
    std::vector<ServeRequest> shed;

    /** Prefilled requests awaiting KV handover to a decode group
     *  (always empty outside disaggregated prefill mode). */
    std::vector<ServeRequest> handoffs;

    /** Brownout ladder position (all zero with brownout off). */
    BrownoutController::State brownout;

    KvPoolStats kvPool;

    /** Paged backend (empty with paging off). Held-block lists are
     *  request-id-sorted so the state is hash-map-order-free. */
    bool paged = false;
    KvBlockManager::State blocks;
    PrefixCache::State prefix;
    std::vector<std::pair<std::uint64_t, std::vector<BlockId>>>
        heldBlocks;

    /** Far tier (empty with tiering off). */
    bool tiered = false;
    tier::TieredBlockPool::State tierPool;
    tier::MigrationEngine::State migration;
    std::vector<tier::TierBlockMeta> blockMeta;
    std::uint64_t pinViolations = 0;

    std::uint64_t iterationSeq = 0;
    std::uint64_t lastAbandoned = 0;
    std::uint64_t lastPinViolations = 0;
};

/** One model instance's serving loop on a seconds-resolution clock. */
class BatchScheduler
{
  public:
    BatchScheduler(const llm::ModelConfig &model,
                   const BatchCostModel &cost,
                   std::uint64_t kv_capacity_bytes,
                   const SchedulerConfig &cfg, ServeMetrics &metrics);

    /**
     * Hand over an arrival. Submissions must come in arrival order;
     * requests that can never run (malformed, context beyond the
     * model, or worst-case KV beyond the whole pool) are rejected
     * immediately.
     */
    void submit(ServeRequest req);

    /**
     * Disaggregated-prefill role: when set, a request leaves this
     * scheduler at the iteration its first token lands (KV released,
     * TTFT sampled here) and waits in the handoff list for the
     * dispatcher to transfer its KV to a decode group. Requests whose
     * whole output is the first token finish locally as usual. Off by
     * default; the dispatcher flips it on prefill groups only.
     */
    void setPrefillHandoff(bool on) { prefillHandoff_ = on; }

    /**
     * Enqueue a request whose prefill already ran on another group
     * (prefilledTokens == inputTokens, generated == 1, TTFT already
     * sampled there). Joins the FCFS queue at @p req.arrivalSeconds -
     * the handover-ready time stamped by the dispatcher - without
     * re-counting submission metrics and without the front-door
     * validity checks, which the prefill side already ran.
     */
    void submitContinuation(ServeRequest req);

    /** Drain the handoff list (prefill groups under disaggregation). */
    std::vector<ServeRequest> takeHandoffs();

    /** Process iterations until the clock reaches @p t or the
     *  instance goes idle. */
    void advanceTo(double t);

    /** Run until every submitted request finished. */
    void drain();

    /**
     * Attach fault injection: @p site is polled once per iteration (at
     * the tick of the iteration's end). Kind IterationFail loses the
     * iteration's work - batch members are re-enqueued from scratch
     * (bounded by RasPolicy::maxRequestRetries, then Failed) and the
     * group sits out a cooldown window during which the dispatcher
     * routes new arrivals around it.
     */
    void attachFaultSite(fault::FaultSite *site) { faultSite_ = site; }

    /**
     * Attach a tracer; tracks register eagerly as "<prefix>.…" so ids
     * depend only on attach order. The serving clock is seconds and
     * converts to trace ticks via secondsToTicks. Emits iteration
     * spans, request-lifecycle instants (arrive/admit/token/retire,
     * requeue/fail under fault injection, preempt under paging) and
     * queue/KV/batch counters; paged mode adds a kv_blocks counter
     * and prefix-cache hit/miss/cow/evict instants. With paging off
     * the track set and emitted bytes are unchanged from the
     * byte-pool-only scheduler.
     */
    void attachTracer(trace::Tracer *t, const std::string &prefix);

    /**
     * Route iteration pricing through @p pricer (serve/calibration)
     * instead of the built-in cost model. Non-owning; the pricer must
     * outlive the scheduler. With none attached (the default) the
     * scheduler prices through its own BatchCostModel — bit-identical
     * to the pre-fast-forward code path.
     */
    void setPricer(const IterationPricer *pricer) { pricer_ = pricer; }

    /**
     * Attach this group's circuit breaker (serve/breaker); every
     * iteration outcome (success flag + effective duration) is
     * scored at the iteration's end clock. Non-owning; null (the
     * default) detaches.
     */
    void setBreaker(CircuitBreaker *b) { breaker_ = b; }

    double clockSeconds() const { return clock_; }

    /** True while @p t lies inside a post-failure cooldown window. */
    bool degradedAt(double t) const { return t < degradedUntil_; }

    /** Queued + running requests. */
    std::size_t
    inFlight() const
    {
        return queue_.size() + batch_.size();
    }

    /** Queued-but-not-running requests (admission-gate input). */
    std::size_t queueDepth() const { return queue_.size(); }

    /**
     * Outstanding worst-case KV demand (queued + running requests'
     * full-context footprint) as a fraction of pool capacity; the
     * admission controller's KV-headroom gate input. Can exceed 1
     * while the queue holds more work than the pool.
     */
    double kvDemandFraction() const;

    /** Current brownout ladder level (0 = full service). */
    std::uint64_t brownoutLevel() const { return brownout_.level(); }

    /**
     * Total tokens of work not yet done (prompt + generation for
     * queued requests, remaining generation for running ones); the
     * dispatcher's routing key.
     */
    std::uint64_t outstandingTokens() const;

    /**
     * Prompt tokens of @p req the prefix cache would serve right now
     * (0 with paging/prefix caching off). Side-effect-free; the
     * dispatcher's cache-affinity routing key.
     */
    std::uint64_t probeCachedTokens(const ServeRequest &req) const;

    const KvCachePool &kvPool() const { return kv_; }
    /** Null unless the paged backend is enabled. */
    const KvBlockManager *blockManager() const { return blockMgr_.get(); }
    /** Null unless the paged backend is enabled. */
    const PrefixCache *prefixCache() const { return prefixCache_.get(); }
    /** Null unless the far tier is enabled. */
    const tier::TieredBlockPool *tierPool() const
    {
        return tierPool_.get();
    }
    /** Null unless the far tier is enabled. */
    const tier::MigrationEngine *migrationEngine() const
    {
        return migration_.get();
    }

    /** All KV occupancy counters in one consistent snapshot. */
    KvSnapshot kvSnapshot() const;

    /**
     * Capture the scheduler's full mutable state between iterations.
     * Legal whenever no iteration is running (i.e. any time from the
     * caller's perspective); with tiering on, in-flight migrations
     * would panic, but between iterations there are none.
     */
    SchedulerState state() const;

    /**
     * Restore @p s onto a scheduler constructed with the same model,
     * cost model, KV capacity, and config. Fatal on a structural
     * mismatch (different capacity, paging, or tiering).
     */
    void restore(const SchedulerState &s);

    const std::vector<ServeRequest> &finished() const
    {
        return finished_;
    }
    const std::vector<ServeRequest> &rejected() const
    {
        return rejected_;
    }
    const std::vector<ServeRequest> &failed() const { return failed_; }
    const std::vector<ServeRequest> &shed() const { return shed_; }

  private:
    /** Run one iteration; false when there is nothing to do. */
    bool step();

    /** Move admissible queued requests into @p joining. */
    void admit(std::vector<ServeRequest> &joining);

    /**
     * Shed queued requests whose deadline is already blown or whose
     * queue-time budget expired (ShedConfig); returns how many were
     * dropped. No-op with shedding off.
     */
    std::size_t shedExpired();

    /** Terminate @p r as Shed (deadline or queue timeout). */
    void shedRequest(ServeRequest r, bool timed_out);

    /**
     * Admission-time TTFT estimate for the queue head: the earliest
     * its first token could land, via the attached pricer or the
     * built-in cost model. Only called with shedding on.
     */
    double estimateTtftSeconds(const ServeRequest &head) const;

    /** Paged admission of the queue head: prefix lookup, COW of a
     *  cached partial tail, block allocation for prompt + one decode
     *  slot. False (nothing held) when the blocks are not there. */
    bool tryAdmitPaged(ServeRequest &head);

    /**
     * Ensure every batch member owns the block its next token lands
     * in, preempting latest-arrival members (or stalling, with
     * preemption off) when the pool is exhausted. Returns per-member
     * stall flags aligned with batch_ after preempted members were
     * removed.
     */
    std::vector<bool> growPaged();

    /** Allocate one block, evicting prefix-cache LRU blocks as
     *  needed; InvalidBlock when truly out of memory. */
    BlockId allocateBlock();

    /** Release every block @p req holds (no-op in byte mode). */
    void releaseBlocks(const ServeRequest &req);

    /** Re-enqueue @p r at its FCFS position (sorted by arrival, id). */
    void requeueFcfs(ServeRequest r);

    /** True while @p r still owes prefill chunks (chunked mode only;
     *  always false with chunkTokens == 0). */
    bool prefilling(const ServeRequest &r) const
    {
        return cfg_.chunkTokens > 0 && r.generated == 0 &&
            r.prefilledTokens < r.inputTokens;
    }

    /** True for a request whose prefill ran on another group (its KV
     *  arrived over the link; it owes no prefill compute here). */
    static bool
    handedOver(const ServeRequest &r)
    {
        return r.generated > 0 && r.prefilledTokens >= r.inputTokens;
    }

    /** Prompt tokens the next chunk of @p r covers. */
    std::uint64_t
    chunkAdvance(const ServeRequest &r) const
    {
        const std::uint64_t left = r.inputTokens - r.prefilledTokens;
        return left < cfg_.chunkTokens ? left : cfg_.chunkTokens;
    }

    /** Preempt batch member @p r: free blocks, reset progress,
     *  requeue, count recompute tokens. */
    void preemptMember(ServeRequest &r);

    /** KV utilization of whichever backend gates admission. */
    double kvUtilization() const;

    /** Lose @p joining + batch_ to a fault; requeue or abandon.
     *  @p fail_stop selects the long GroupFailStop cooldown. */
    void failIteration(std::vector<ServeRequest> &joining,
                       bool fail_stop = false);

    // --- far tier (all no-ops / unreachable with tiering off) ---
    bool tiered() const { return tierPool_ != nullptr; }

    /** Give a fresh allocation a home: a free near frame, a frame
     *  vacated by a policy demotion, or - when nothing near is
     *  demotable - the far tier itself. */
    void placeTiered(BlockId b);

    /** Victim-selection view over the current ledger. */
    tier::TierPolicyContext policyContext() const;

    /** Rewrite @p req's chain metadata (owner / position / write
     *  head) after admission or growth. */
    void assignChainMeta(std::uint64_t id,
                         const std::vector<BlockId> &blocks);

    /** Promote-mode: pull far blocks of decoding members into free
     *  near frames (batch order, chain order) before pricing. */
    void promoteForBatch(const std::vector<bool> &stalled);

    /** Far KV streamed for this step's attention, in bytes. */
    std::uint64_t farStreamBytes(
        const std::vector<ServeRequest> &joining,
        const std::vector<bool> &stalled) const;

    /** Host-link activation traffic of this step, in bytes. */
    std::uint64_t inferenceLinkBytes(
        const std::vector<ServeRequest> &joining,
        const std::vector<bool> &stalled) const;

    /** LRU-touch every block attended this step. */
    void touchTierMeta(const std::vector<bool> &stalled);

    /** Price + complete any migrations issued by an admission attempt
     *  that ended with nothing to run (rollback after demotions). */
    void settleTierIdle();

    /** Feed the step's tier ledger to metrics (delta-corrected). */
    void noteTierMetrics(const tier::TierIterationStats &iter);

    llm::ModelConfig model_;
    BatchCostModel cost_;
    /** Iteration pricing override; null = price through cost_. */
    const IterationPricer *pricer_ = nullptr;
    KvCachePool kv_;
    SchedulerConfig cfg_;
    ServeMetrics &metrics_;

    /** Paged backend (null in byte-pool mode). */
    std::unique_ptr<KvBlockManager> blockMgr_;
    std::unique_ptr<PrefixCache> prefixCache_;
    /** Blocks held by each live request, by request id. */
    std::unordered_map<std::uint64_t, std::vector<BlockId>> heldBlocks_;

    /**
     * Far tier (null with tiering off). Declared after prefixCache_
     * so destruction detaches the pool's manager observer before the
     * cache's clear() releases its blocks.
     */
    std::unique_ptr<tier::TieredBlockPool> tierPool_;
    std::unique_ptr<tier::TierPolicy> tierPolicy_;
    std::unique_ptr<tier::MigrationEngine> migration_;
    /** Placement metadata by BlockId (tier mode only). */
    std::vector<tier::TierBlockMeta> blockMeta_;
    std::uint64_t iterationSeq_ = 0;
    /** Last cumulative figures fed to metrics (delta source). */
    std::uint64_t lastAbandoned_ = 0;
    std::uint64_t lastPinViolations_ = 0;

    double clock_ = 0.0;
    double lastArrival_ = 0.0;
    std::deque<ServeRequest> queue_; // arrived or future, FCFS
    std::vector<ServeRequest> batch_; // decoding members
    std::vector<ServeRequest> finished_;
    std::vector<ServeRequest> rejected_;
    std::vector<ServeRequest> failed_;
    std::vector<ServeRequest> shed_;

    /** Disaggregated prefill (both inert on the monolithic path). */
    bool prefillHandoff_ = false;
    std::vector<ServeRequest> handoffs_;

    /** Brownout ladder (inert unless cfg_.brownout.enabled). */
    BrownoutController brownout_;

    /** Fault injection (null = fault-free, the default). */
    fault::FaultSite *faultSite_ = nullptr;
    double degradedUntil_ = 0.0;

    /** Circuit breaker observing this group (null = none). */
    CircuitBreaker *breaker_ = nullptr;

    /** Tracing (null = off, the default). */
    trace::Tracer *tracer_ = nullptr;
    trace::TrackId iterTrack_ = trace::InvalidTrack;
    trace::TrackId reqTrack_ = trace::InvalidTrack;
    trace::TrackId queueTrack_ = trace::InvalidTrack;
    trace::TrackId kvTrack_ = trace::InvalidTrack;
    trace::TrackId batchTrack_ = trace::InvalidTrack;
    trace::TrackId blocksTrack_ = trace::InvalidTrack;
    trace::TrackId prefixTrack_ = trace::InvalidTrack;
    trace::TrackId tierTrack_ = trace::InvalidTrack;
    trace::TrackId nearTrack_ = trace::InvalidTrack;
    trace::TrackId farTrack_ = trace::InvalidTrack;
    /** Registered only with brownout on (off-mode bytes unchanged). */
    trace::TrackId brownoutTrack_ = trace::InvalidTrack;
};

} // namespace serve
} // namespace cxlpnm

#endif // CXLPNM_SERVE_SCHEDULER_HH
