/**
 * @file
 * Iteration-level continuous batching for one model instance
 * (Orca/vLLM-style): the decode loop runs one token step at a time,
 * new requests join the running batch between steps (paying their
 * prefill as they join), and finished requests retire immediately,
 * freeing their KV reservation for the next admission.
 *
 * Admission is KV-capacity-aware: a request is admitted only when its
 * worst-case KV footprint fits the pool, so the batch can never
 * outgrow device memory. With `continuousBatching = false` the same
 * loop degenerates to one-request-at-a-time serving - the baseline the
 * tests compare against.
 */

#ifndef CXLPNM_SERVE_SCHEDULER_HH
#define CXLPNM_SERVE_SCHEDULER_HH

#include <cstdint>
#include <deque>
#include <vector>

#include "serve/cost_model.hh"
#include "serve/kv_pool.hh"
#include "serve/metrics.hh"
#include "serve/request.hh"
#include "sim/fault.hh"
#include "sim/trace.hh"

namespace cxlpnm
{
namespace serve
{

/** Recovery policy when a batch iteration fails (injected fault). */
struct RasPolicy
{
    /**
     * Restarts a request survives before it is abandoned as Failed.
     * A failed iteration loses all in-progress generation: members
     * restart from their prompt on the next admission.
     */
    std::uint64_t maxRequestRetries = 2;
    /**
     * Dead time after a failed iteration (device reset + program
     * reload as seen from the serving layer). The group is routed
     * around by the dispatcher for this window.
     */
    double degradedCooldownSeconds = 0.5;
};

/** Scheduling policy knobs. */
struct SchedulerConfig
{
    /** Iteration batch cap (requests decoded per step). */
    std::size_t maxBatch = 32;
    /** False: admit only into an empty batch (serial baseline). */
    bool continuousBatching = true;
    /** Recovery policy under fault injection. */
    RasPolicy ras;
};

/** One model instance's serving loop on a seconds-resolution clock. */
class BatchScheduler
{
  public:
    BatchScheduler(const llm::ModelConfig &model,
                   const BatchCostModel &cost,
                   std::uint64_t kv_capacity_bytes,
                   const SchedulerConfig &cfg, ServeMetrics &metrics);

    /**
     * Hand over an arrival. Submissions must come in arrival order;
     * requests that can never run (malformed, context beyond the
     * model, or worst-case KV beyond the whole pool) are rejected
     * immediately.
     */
    void submit(ServeRequest req);

    /** Process iterations until the clock reaches @p t or the
     *  instance goes idle. */
    void advanceTo(double t);

    /** Run until every submitted request finished. */
    void drain();

    /**
     * Attach fault injection: @p site is polled once per iteration (at
     * the tick of the iteration's end). Kind IterationFail loses the
     * iteration's work - batch members are re-enqueued from scratch
     * (bounded by RasPolicy::maxRequestRetries, then Failed) and the
     * group sits out a cooldown window during which the dispatcher
     * routes new arrivals around it.
     */
    void attachFaultSite(fault::FaultSite *site) { faultSite_ = site; }

    /**
     * Attach a tracer; tracks register eagerly as "<prefix>.…" so ids
     * depend only on attach order. The serving clock is seconds and
     * converts to trace ticks via secondsToTicks. Emits iteration
     * spans, request-lifecycle instants (arrive/admit/token/retire,
     * requeue/fail under fault injection) and queue/KV/batch counters.
     */
    void attachTracer(trace::Tracer *t, const std::string &prefix);

    double clockSeconds() const { return clock_; }

    /** True while @p t lies inside a post-failure cooldown window. */
    bool degradedAt(double t) const { return t < degradedUntil_; }

    /** Queued + running requests. */
    std::size_t
    inFlight() const
    {
        return queue_.size() + batch_.size();
    }

    /**
     * Total tokens of work not yet done (prompt + generation for
     * queued requests, remaining generation for running ones); the
     * dispatcher's routing key.
     */
    std::uint64_t outstandingTokens() const;

    const KvCachePool &kvPool() const { return kv_; }
    const std::vector<ServeRequest> &finished() const
    {
        return finished_;
    }
    const std::vector<ServeRequest> &rejected() const
    {
        return rejected_;
    }
    const std::vector<ServeRequest> &failed() const { return failed_; }

  private:
    /** Run one iteration; false when there is nothing to do. */
    bool step();

    /** Move admissible queued requests into @p joining. */
    void admit(std::vector<ServeRequest> &joining);

    /** Lose @p joining + batch_ to a fault; requeue or abandon. */
    void failIteration(std::vector<ServeRequest> &joining);

    llm::ModelConfig model_;
    BatchCostModel cost_;
    KvCachePool kv_;
    SchedulerConfig cfg_;
    ServeMetrics &metrics_;

    double clock_ = 0.0;
    double lastArrival_ = 0.0;
    std::deque<ServeRequest> queue_; // arrived or future, FIFO
    std::vector<ServeRequest> batch_; // decoding members
    std::vector<ServeRequest> finished_;
    std::vector<ServeRequest> rejected_;
    std::vector<ServeRequest> failed_;

    /** Fault injection (null = fault-free, the default). */
    fault::FaultSite *faultSite_ = nullptr;
    double degradedUntil_ = 0.0;

    /** Tracing (null = off, the default). */
    trace::Tracer *tracer_ = nullptr;
    trace::TrackId iterTrack_ = trace::InvalidTrack;
    trace::TrackId reqTrack_ = trace::InvalidTrack;
    trace::TrackId queueTrack_ = trace::InvalidTrack;
    trace::TrackId kvTrack_ = trace::InvalidTrack;
    trace::TrackId batchTrack_ = trace::InvalidTrack;
};

} // namespace serve
} // namespace cxlpnm

#endif // CXLPNM_SERVE_SCHEDULER_HH
