/**
 * @file
 * The unit of work of the serving simulator: one text-generation
 * request flowing through arrival -> admission -> continuous-batched
 * execution -> retirement (§I's datacenter service workload).
 */

#ifndef CXLPNM_SERVE_REQUEST_HH
#define CXLPNM_SERVE_REQUEST_HH

#include <cstdint>
#include <vector>

#include "llm/model_config.hh"

namespace cxlpnm
{
namespace serve
{

/** Lifecycle of a request inside one scheduler. */
enum class RequestState
{
    Queued,   // arrived, waiting for KV capacity or a batch slot
    Running,  // member of the current iteration batch
    Finished, // all output tokens produced
    Rejected, // can never fit (context > model or KV pool capacity)
    Failed,   // lost to device faults after exhausting its retries
    Shed,     // dropped by overload protection (deadline or timeout)
};

const char *requestStateName(RequestState s);

/** One serving request plus its measured timeline. */
struct ServeRequest
{
    std::uint64_t id = 0;
    /** Arrival time on the simulator's seconds clock. */
    double arrivalSeconds = 0.0;
    std::uint64_t inputTokens = 0;
    std::uint64_t outputTokens = 0;

    // --- overload protection (admission / shedding) ---
    /** Tenant this request bills against; 0 is the default tenant. */
    std::uint64_t tenant = 0;
    /**
     * TTFT SLO deadline relative to arrival, in seconds; 0 means the
     * request carries no deadline and is never deadline-shed.
     */
    double deadlineSeconds = 0.0;

    // --- shared-prefix identity (paged KV / prefix caching) ---
    /**
     * The first sharedPrefixTokens prompt tokens are byte-identical
     * across every request of the same prefixGroup (a shared system
     * prompt / few-shot header); 0 means a fully unique prompt. The
     * prefix cache keys on this, the byte-pool path ignores it.
     */
    std::uint64_t prefixGroup = 0;
    std::uint64_t sharedPrefixTokens = 0;

    /**
     * Prompt tokens whose KV was served from the prefix cache at the
     * latest admission (they skip the sum stage); maintained by the
     * scheduler, reset when the request is preempted or requeued.
     */
    std::uint64_t cachedPrefixTokens = 0;
    /** Times this request was preempted for KV capacity. */
    std::uint64_t preemptions = 0;

    // --- progress, maintained by the scheduler ---
    RequestState state = RequestState::Queued;
    /** Output tokens produced so far. */
    std::uint64_t generated = 0;
    /**
     * Prompt tokens whose prefill compute has already run. Only
     * maintained when chunked prefill or disaggregation is on: a
     * mid-chunk request has cachedPrefixTokens <= prefilledTokens <
     * inputTokens, and a request handed over to a decode group after
     * prefill carries prefilledTokens == inputTokens (its KV arrived
     * over the CXL link, no prefill compute is owed). Always 0 on the
     * legacy monolithic path.
     */
    std::uint64_t prefilledTokens = 0;
    /** Times this request was restarted after an iteration failure. */
    std::uint64_t retries = 0;
    double admitSeconds = -1.0;
    double firstTokenSeconds = -1.0;
    double finishSeconds = -1.0;

    /** Attended context right now (prompt + generated). */
    std::uint64_t
    contextTokens() const
    {
        return inputTokens + generated;
    }

    /** Output tokens still to produce. */
    std::uint64_t
    remainingTokens() const
    {
        return outputTokens - generated;
    }

    /**
     * KV bytes this request can grow to if run to its full output
     * length; the admission gate reserves this worst case up front so
     * a running batch can never outgrow the pool (§V-A capacity).
     */
    std::uint64_t
    worstCaseKvBytes(const llm::ModelConfig &cfg) const
    {
        return cfg.kvCacheBytes(inputTokens + outputTokens);
    }

    /** Time-to-first-token; negative before the first token exists. */
    double
    ttftSeconds() const
    {
        return firstTokenSeconds < 0.0
            ? -1.0
            : firstTokenSeconds - arrivalSeconds;
    }

    // --- shared-prefix content keys (paged KV mode) ---

    /** Full blocks of the shared prefix at @p block_tokens grain. */
    std::uint64_t
    sharedFullBlocks(std::uint64_t block_tokens) const
    {
        return sharedPrefixTokens / block_tokens;
    }

    /** Shared tokens spilling into the block after the full ones. */
    std::uint64_t
    sharedPartialTokens(std::uint64_t block_tokens) const
    {
        return sharedPrefixTokens % block_tokens;
    }

    /**
     * Content key of shared block @p b: requests of the same group
     * agree on it, everything else diverges (SplitMix64 finalizer, so
     * group 0/block 0 does not collapse to a common key).
     */
    std::uint64_t
    sharedBlockKey(std::uint64_t b) const
    {
        std::uint64_t z = prefixGroup * 0x9e3779b97f4a7c15ull + b +
            0x632be59bd9b4e019ull;
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
        return z ^ (z >> 31);
    }

    /** Key chain of every full shared block, for the prefix cache. */
    std::vector<std::uint64_t>
    sharedBlockKeys(std::uint64_t block_tokens) const
    {
        const std::uint64_t n = sharedFullBlocks(block_tokens);
        std::vector<std::uint64_t> keys;
        keys.reserve(n);
        for (std::uint64_t b = 0; b < n; ++b)
            keys.push_back(sharedBlockKey(b));
        return keys;
    }
};

} // namespace serve
} // namespace cxlpnm

#endif // CXLPNM_SERVE_REQUEST_HH
