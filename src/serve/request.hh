/**
 * @file
 * The unit of work of the serving simulator: one text-generation
 * request flowing through arrival -> admission -> continuous-batched
 * execution -> retirement (§I's datacenter service workload).
 */

#ifndef CXLPNM_SERVE_REQUEST_HH
#define CXLPNM_SERVE_REQUEST_HH

#include <cstdint>

#include "llm/model_config.hh"

namespace cxlpnm
{
namespace serve
{

/** Lifecycle of a request inside one scheduler. */
enum class RequestState
{
    Queued,   // arrived, waiting for KV capacity or a batch slot
    Running,  // member of the current iteration batch
    Finished, // all output tokens produced
    Rejected, // can never fit (context > model or KV pool capacity)
    Failed,   // lost to device faults after exhausting its retries
};

const char *requestStateName(RequestState s);

/** One serving request plus its measured timeline. */
struct ServeRequest
{
    std::uint64_t id = 0;
    /** Arrival time on the simulator's seconds clock. */
    double arrivalSeconds = 0.0;
    std::uint64_t inputTokens = 0;
    std::uint64_t outputTokens = 0;

    // --- progress, maintained by the scheduler ---
    RequestState state = RequestState::Queued;
    /** Output tokens produced so far. */
    std::uint64_t generated = 0;
    /** Times this request was restarted after an iteration failure. */
    std::uint64_t retries = 0;
    double admitSeconds = -1.0;
    double firstTokenSeconds = -1.0;
    double finishSeconds = -1.0;

    /** Attended context right now (prompt + generated). */
    std::uint64_t
    contextTokens() const
    {
        return inputTokens + generated;
    }

    /** Output tokens still to produce. */
    std::uint64_t
    remainingTokens() const
    {
        return outputTokens - generated;
    }

    /**
     * KV bytes this request can grow to if run to its full output
     * length; the admission gate reserves this worst case up front so
     * a running batch can never outgrow the pool (§V-A capacity).
     */
    std::uint64_t
    worstCaseKvBytes(const llm::ModelConfig &cfg) const
    {
        return cfg.kvCacheBytes(inputTokens + outputTokens);
    }

    /** Time-to-first-token; negative before the first token exists. */
    double
    ttftSeconds() const
    {
        return firstTokenSeconds < 0.0
            ? -1.0
            : firstTokenSeconds - arrivalSeconds;
    }
};

} // namespace serve
} // namespace cxlpnm

#endif // CXLPNM_SERVE_REQUEST_HH
