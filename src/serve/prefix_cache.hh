/**
 * @file
 * Radix-style prefix index over KV blocks (the block-manager half of
 * an automatic-prefix-caching serving engine, cf. the CXL KV-cache
 * management line of work in PAPERS.md).
 *
 * Prompts are modeled as a chain of per-block *content keys* (see
 * ServeRequest::sharedBlockKey): requests sharing a prompt prefix
 * produce the same key chain, so the trie maps key chains to the
 * blocks already holding that prefix's KV. The trie is stored in
 * adjacency form - each node is addressed by the running hash of its
 * key chain, with an explicit parent link and child count - which
 * keeps lookups O(matched blocks) without materialising node objects.
 *
 * Sharing rules:
 *  - Only *full* blocks of the shared prefix are shared in place
 *    (lookup addRefs them for the caller).
 *  - The shared prefix's partial tail lives at the head of a donor
 *    request's block, which also holds that donor's unique tokens.
 *    A later request matching the tail must *copy-on-write*: it
 *    allocates its own block and copies the tail KV (accounting only
 *    here), leaving the donor block untouched.
 *
 * Eviction is LRU over leaf entries whose block nobody but the cache
 * holds, so evicting always returns a block to the free list and
 * never breaks a chain in the middle. Selection is by a strictly
 * increasing touch sequence (ties impossible), independent of hash-map
 * iteration order, so the hit/evict sequence is a pure function of
 * the operation sequence - the determinism contract the rest of the
 * stack follows.
 */

#ifndef CXLPNM_SERVE_PREFIX_CACHE_HH
#define CXLPNM_SERVE_PREFIX_CACHE_HH

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "serve/kv_block_manager.hh"

namespace cxlpnm
{
namespace serve
{

/** Trie of cached prompt-prefix blocks over a KvBlockManager. */
class PrefixCache
{
  public:
    explicit PrefixCache(KvBlockManager &mgr) : mgr_(mgr) {}
    ~PrefixCache();
    PrefixCache(const PrefixCache &) = delete;
    PrefixCache &operator=(const PrefixCache &) = delete;

    /** Result of matching one request's shared prefix. */
    struct Match
    {
        /** Cached full blocks, in chain order, one ref taken per
         *  block on the caller's behalf. */
        std::vector<BlockId> blocks;
        /** Tokens of a cached partial tail (0 = no tail hit). The
         *  caller must copy-on-write into its own block; the donor
         *  stays with the cache. */
        std::uint64_t partialTokens = 0;
    };

    /**
     * Longest cached chain under @p keys; a @p partial_tokens > 0
     * additionally probes for the partial-tail donor hanging off the
     * full-chain node, addressed by the tail block's own content key
     * @p tail_key (so tails of different prefix groups never collide,
     * even under the zero-full-block chain where the parent node is
     * the root for every group). Matched entries are LRU-touched;
     * matched full blocks are addRef'd for the caller.
     */
    Match lookup(const std::vector<std::uint64_t> &keys,
                 std::uint64_t partial_tokens, std::uint64_t tail_key);

    /**
     * Side-effect-free variant of lookup (no refs, no LRU touch):
     * cached tokens a request would hit right now, for cache-affinity
     * routing. @p block_tokens converts matched blocks to tokens.
     */
    std::uint64_t peekCachedTokens(const std::vector<std::uint64_t> &keys,
                                   std::uint64_t partial_tokens,
                                   std::uint64_t tail_key,
                                   std::uint64_t block_tokens) const;

    /**
     * Register a request's shared-prefix blocks under @p keys
     * (chain order; @p blocks parallel to keys), plus an optional
     * partial-tail donor addressed by @p tail_key. Entries the trie
     * already holds are skipped; new entries take one cache-owned ref
     * on their block.
     */
    void insert(const std::vector<std::uint64_t> &keys,
                const std::vector<BlockId> &blocks,
                std::uint64_t partial_tokens, std::uint64_t tail_key,
                BlockId partial_donor);

    /**
     * Evict the least-recently-used leaf entry whose block only the
     * cache still references, returning its block to the free list.
     * False when nothing is evictable (all cached blocks are shared
     * with live requests).
     */
    bool evictOne();

    /**
     * Extra veto applied per candidate during evictOne(): return false
     * to protect a block (e.g. its bytes are mid-migration between KV
     * tiers and freeing it would re-issue the frame while the transfer
     * still owns it). A vetoed candidate is skipped, not terminal -
     * the scan continues with the next-oldest leaf. Null (default)
     * vetoes nothing.
     */
    void setEvictGuard(std::function<bool(BlockId)> guard)
    {
        evictGuard_ = std::move(guard);
    }

    /** Drop every entry (and the cache's block refs). */
    void clear();

    /** Live trie entries == blocks the cache holds a ref on. */
    std::size_t entries() const { return entries_.size(); }

    std::uint64_t evictions() const { return evictions_; }
    std::uint64_t insertions() const { return insertions_; }

    /** One trie entry, flattened for warm-state snapshot/restore. */
    struct EntryState
    {
        std::uint64_t hash = 0;
        BlockId block = InvalidBlock;
        std::uint64_t parent = 0;
        std::uint32_t children = 0;
        std::uint64_t lastUse = 0;
        bool partialTail = false;
    };

    /** Trie + counters. Entries are hash-sorted so the state (and its
     *  serialized form) is independent of hash-map iteration order;
     *  cache behavior already is (LRU by touch sequence). */
    struct State
    {
        std::vector<EntryState> entries;
        std::uint64_t seq = 0;
        std::uint64_t evictions = 0;
        std::uint64_t insertions = 0;
    };

    State state() const;

    /**
     * Restore @p s. The cache's block refs are part of the manager's
     * own state (restored separately), so this rebuilds the trie
     * without touching refcounts; any current entries are dropped the
     * same way.
     */
    void restore(const State &s);

    /** Running hash of a key chain; exposed for tests. */
    static std::uint64_t chainHash(std::uint64_t parent,
                                   std::uint64_t key);

  private:
    struct Entry
    {
        BlockId block = InvalidBlock;
        std::uint64_t parent = 0; // chain hash; 0 = root
        std::uint32_t children = 0;
        std::uint64_t lastUse = 0; // strictly increasing touch seq
        bool partialTail = false;
    };

    /** Hash of the partial-tail child of full-chain node @p parent. */
    static std::uint64_t tailHash(std::uint64_t parent,
                                  std::uint64_t tail_key,
                                  std::uint64_t partial_tokens);

    KvBlockManager &mgr_;
    std::function<bool(BlockId)> evictGuard_;
    std::unordered_map<std::uint64_t, Entry> entries_;
    std::uint64_t seq_ = 0;
    std::uint64_t evictions_ = 0;
    std::uint64_t insertions_ = 0;
};

} // namespace serve
} // namespace cxlpnm

#endif // CXLPNM_SERVE_PREFIX_CACHE_HH
