#include "llm/reference_model.hh"

#include <cmath>

#include "numeric/linalg.hh"
#include "sim/logging.hh"

namespace cxlpnm
{
namespace llm
{

ReferenceModel::ReferenceModel(const ModelConfig &cfg, std::uint64_t seed)
    : cfg_(cfg), seed_(seed)
{
    kCache_.resize(cfg_.numLayers);
    vCache_.resize(cfg_.numLayers);
}

Tensor<double>
ReferenceModel::weight(int layer, WeightSlot slot) const
{
    return makeWeight(cfg_, seed_, layer, slot).cast<double>();
}

Tensor<double>
ReferenceModel::prefill(const std::vector<std::uint32_t> &tokens)
{
    fatal_if(tokens.empty(), "prefill with empty prompt");
    fatal_if(tokens.size() > cfg_.maxPositions,
             "prompt longer than maxPositions");
    for (auto &k : kCache_)
        k = Tensor<double>();
    for (auto &v : vCache_)
        v = Tensor<double>();
    seqLen_ = 0;

    const auto tok = weight(-1, WeightSlot::TokEmbed);
    const auto pos = weight(-1, WeightSlot::PosEmbed);
    Tensor<double> x(tokens.size(), cfg_.dModel);
    for (std::size_t i = 0; i < tokens.size(); ++i) {
        fatal_if(tokens[i] >= cfg_.vocabSize, "token id out of range");
        for (std::uint32_t c = 0; c < cfg_.dModel; ++c)
            x.at(i, c) = tok.at(tokens[i], c) + pos.at(i, c);
    }
    return forward(std::move(x));
}

Tensor<double>
ReferenceModel::decodeStep(std::uint32_t token)
{
    fatal_if(seqLen_ == 0, "decodeStep before prefill");
    fatal_if(seqLen_ >= cfg_.maxPositions, "sequence overflow");
    fatal_if(token >= cfg_.vocabSize, "token id out of range");

    const auto tok = weight(-1, WeightSlot::TokEmbed);
    const auto pos = weight(-1, WeightSlot::PosEmbed);
    Tensor<double> x(1, cfg_.dModel);
    for (std::uint32_t c = 0; c < cfg_.dModel; ++c)
        x.at(0, c) = tok.at(token, c) + pos.at(seqLen_, c);
    return forward(std::move(x));
}

std::vector<std::uint32_t>
ReferenceModel::greedyGenerate(const std::vector<std::uint32_t> &prompt,
                               std::size_t n)
{
    std::vector<std::uint32_t> out;
    Tensor<double> logits = prefill(prompt);
    for (std::size_t i = 0; i < n; ++i) {
        const auto next =
            static_cast<std::uint32_t>(linalg::argmaxRow(logits, 0));
        out.push_back(next);
        if (i + 1 < n)
            logits = decodeStep(next);
    }
    return out;
}

namespace
{

/** Append the rows of @p rows to @p cache (growing m x d tensor). */
void
appendRows(Tensor<double> &cache, const Tensor<double> &rows)
{
    Tensor<double> grown(cache.rows() + rows.rows(), rows.cols());
    for (std::size_t r = 0; r < cache.rows(); ++r)
        for (std::size_t c = 0; c < cache.cols(); ++c)
            grown.at(r, c) = cache.at(r, c);
    for (std::size_t r = 0; r < rows.rows(); ++r)
        for (std::size_t c = 0; c < rows.cols(); ++c)
            grown.at(cache.rows() + r, c) = rows.at(r, c);
    cache = std::move(grown);
}

} // namespace

Tensor<double>
ReferenceModel::forward(Tensor<double> x)
{
    const std::uint32_t d = cfg_.dModel;
    const std::uint32_t h = cfg_.numHeads;
    const std::uint32_t dh = cfg_.headDim();
    const std::size_t m = x.rows();
    const double eps = 1e-5;
    const double inv_sqrt_dh = 1.0 / std::sqrt(static_cast<double>(dh));

    for (std::uint32_t layer = 0; layer < cfg_.numLayers; ++layer) {
        // --- Self-attention block (pre-LN) ---
        Tensor<double> xn(m, d);
        linalg::layerNormRows(x, weight(layer, WeightSlot::Ln1Gamma),
                              weight(layer, WeightSlot::Ln1Beta), eps,
                              xn);

        Tensor<double> qkv(m, 3 * d);
        linalg::gemmBias(xn, weight(layer, WeightSlot::WQkv),
                         weight(layer, WeightSlot::BQkv), qkv);

        Tensor<double> q(m, d), k(m, d), v(m, d);
        for (std::size_t r = 0; r < m; ++r) {
            for (std::uint32_t c = 0; c < d; ++c) {
                q.at(r, c) = qkv.at(r, c);
                k.at(r, c) = qkv.at(r, d + c);
                v.at(r, c) = qkv.at(r, 2 * d + c);
            }
        }
        appendRows(kCache_[layer], k);
        appendRows(vCache_[layer], v);
        const std::size_t ctx = kCache_[layer].rows();

        // Per-head attention over the full cache.
        Tensor<double> attn_out(m, d);
        for (std::uint32_t head = 0; head < h; ++head) {
            const std::uint32_t off = head * dh;
            Tensor<double> scores(m, ctx);
            for (std::size_t r = 0; r < m; ++r) {
                for (std::size_t c = 0; c < ctx; ++c) {
                    double acc = 0.0;
                    for (std::uint32_t e = 0; e < dh; ++e)
                        acc += q.at(r, off + e) *
                            kCache_[layer].at(c, off + e);
                    scores.at(r, c) = acc * inv_sqrt_dh;
                }
            }
            // Causal: new token r (global position ctx-m+r) may attend
            // up to its own position.
            linalg::maskedSoftmaxRows(scores, ctx - m);
            for (std::size_t r = 0; r < m; ++r) {
                for (std::uint32_t e = 0; e < dh; ++e) {
                    double acc = 0.0;
                    for (std::size_t c = 0; c < ctx; ++c)
                        acc += scores.at(r, c) *
                            vCache_[layer].at(c, off + e);
                    attn_out.at(r, off + e) = acc;
                }
            }
        }

        Tensor<double> proj(m, d);
        linalg::gemmBias(attn_out, weight(layer, WeightSlot::WProj),
                         weight(layer, WeightSlot::BProj), proj);
        linalg::add(x, proj, x);

        // --- FFN block ---
        linalg::layerNormRows(x, weight(layer, WeightSlot::Ln2Gamma),
                              weight(layer, WeightSlot::Ln2Beta), eps,
                              xn);
        Tensor<double> f1(m, cfg_.ffnDim);
        linalg::gemmBias(xn, weight(layer, WeightSlot::WFc1),
                         weight(layer, WeightSlot::BFc1), f1);
        linalg::geluInPlace(f1);
        Tensor<double> f2(m, d);
        linalg::gemmBias(f1, weight(layer, WeightSlot::WFc2),
                         weight(layer, WeightSlot::BFc2), f2);
        linalg::add(x, f2, x);
    }
    seqLen_ += m;

    // Final LN on the last token only, then tied LM head.
    Tensor<double> last(1, d);
    for (std::uint32_t c = 0; c < d; ++c)
        last.at(0, c) = x.at(m - 1, c);
    Tensor<double> lastn(1, d);
    linalg::layerNormRows(last, weight(-1, WeightSlot::LnfGamma),
                          weight(-1, WeightSlot::LnfBeta), eps, lastn);

    const auto tok = weight(-1, WeightSlot::TokEmbed); // vocab x d
    Tensor<double> logits(1, cfg_.vocabSize);
    for (std::uint32_t vcb = 0; vcb < cfg_.vocabSize; ++vcb) {
        double acc = 0.0;
        for (std::uint32_t c = 0; c < d; ++c)
            acc += lastn.at(0, c) * tok.at(vcb, c);
        logits.at(0, vcb) = acc;
    }
    return logits;
}

} // namespace llm
} // namespace cxlpnm
