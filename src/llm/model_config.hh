/**
 * @file
 * Transformer (decoder-only) model descriptors: the OPT family the paper
 * evaluates plus GPT-3-class presets, with derived parameter counts,
 * FP16 weight footprints and KV-cache sizes.
 */

#ifndef CXLPNM_LLM_MODEL_CONFIG_HH
#define CXLPNM_LLM_MODEL_CONFIG_HH

#include <cstdint>
#include <string>
#include <vector>

#include "sim/types.hh"

namespace cxlpnm
{
namespace llm
{

/** Architecture of one decoder-only LLM. */
struct ModelConfig
{
    std::string name;
    std::uint32_t numLayers = 0;
    std::uint32_t dModel = 0;
    std::uint32_t numHeads = 0;
    std::uint32_t vocabSize = 50272;   // OPT tokenizer
    std::uint32_t maxPositions = 2048;
    /** FFN inner dimension; 4 * dModel for OPT/GPT. */
    std::uint32_t ffnDim = 0;

    std::uint32_t
    headDim() const
    {
        return dModel / numHeads;
    }

    /** Total parameters (weights + biases + embeddings). */
    std::uint64_t paramCount() const;

    /** FP16 bytes for all parameters. */
    std::uint64_t
    weightBytes() const
    {
        return 2 * paramCount();
    }

    /** Parameters of one decoder layer. */
    std::uint64_t layerParamCount() const;

    /** FP16 bytes of one decoder layer's weights. */
    std::uint64_t
    layerWeightBytes() const
    {
        return 2 * layerParamCount();
    }

    /** KV-cache bytes for a context of @p tokens (all layers, FP16). */
    std::uint64_t
    kvCacheBytes(std::uint64_t tokens) const
    {
        return 2ull /*K+V*/ * tokens * dModel * 2 /*fp16*/ * numLayers;
    }

    /** FLOPs of one full forward pass over @p tokens new tokens with
     *  @p context total attended tokens (2 flops per MAC). */
    double forwardFlops(std::uint64_t tokens,
                        std::uint64_t context) const;

    // --- Presets (OPT paper table 1; GPT-3 from Brown et al.) ---
    static ModelConfig opt125m();
    static ModelConfig opt350m();
    static ModelConfig opt1_3b();
    static ModelConfig opt2_7b();
    static ModelConfig opt6_7b();
    static ModelConfig opt13b();
    static ModelConfig opt30b();
    static ModelConfig opt66b();
    static ModelConfig opt175b();
    /** GPT-3.5-class 175 B model (the paper's motivating example). */
    static ModelConfig gpt3();
    /** Reduced model for functional end-to-end tests. */
    static ModelConfig tiny();

    /** Lookup by name ("opt-13b", "opt-66b", ...); fatal if unknown. */
    static ModelConfig byName(const std::string &name);

    /** All OPT presets in ascending size order. */
    static std::vector<ModelConfig> optFamily();
};

} // namespace llm
} // namespace cxlpnm

#endif // CXLPNM_LLM_MODEL_CONFIG_HH
