/**
 * @file
 * Stage-level operation graphs for decoder-only inference (§II-B).
 *
 * The summarisation (sum) stage processes all L_in input tokens at once
 * (GEMM-shaped work); each generation (gen) stage processes one token
 * against the accumulated KV cache (GEMV-shaped work). Workload describes
 * both as lists of shaped operations that the GPU kernel model executes
 * directly and the PNM code generator mirrors.
 */

#ifndef CXLPNM_LLM_WORKLOAD_HH
#define CXLPNM_LLM_WORKLOAD_HH

#include <cstdint>
#include <string>
#include <vector>

#include "llm/model_config.hh"

namespace cxlpnm
{
namespace llm
{

/** Kinds of operation in a decoder layer (plus embedding/head). */
enum class OpKind
{
    Embed,       // token+position embedding gather
    LayerNorm,
    Qkv,         // fused Q,K,V projection
    AttnScore,   // Q . K^T (per head)
    AttnSoftmax,
    AttnContext, // scores . V (per head)
    Proj,        // attention output projection
    Residual,
    Fc1,
    Gelu,
    Fc2,
    LmHead,      // final projection to vocabulary logits
};

const char *opKindName(OpKind k);

/** One shaped operation: out(m x n) from an (m x k) x (k x n) product
 *  or an elementwise/row op over (m x n). */
struct Op
{
    OpKind kind;
    /** Rows of the output (tokens processed). */
    std::uint64_t m = 0;
    /** Columns of the output. */
    std::uint64_t n = 0;
    /** Inner/reduction dimension (0 for elementwise ops). */
    std::uint64_t k = 0;
    /** Bytes of parameters streamed from memory (weights). */
    std::uint64_t weightBytes = 0;
    /** Bytes of KV-cache traffic (attention ops in gen stages). */
    std::uint64_t kvBytes = 0;
    /** Which decoder layer this belongs to (-1: embedding/head). */
    int layer = -1;

    /** MAC count (0 for elementwise). */
    std::uint64_t
    macs() const
    {
        return k ? m * n * k : 0;
    }

    double
    flops() const
    {
        return k ? 2.0 * static_cast<double>(m) * n * k
                 : static_cast<double>(m) * n;
    }

    /** True when the op is matrix-matrix shaped (sum stage, m > 1). */
    bool isGemm() const { return k != 0 && m > 1; }
    /** True when the op is matrix-vector shaped (gen stage). */
    bool isGemv() const { return k != 0 && m == 1; }
};

/** Aggregate statistics of an op list. */
struct OpStats
{
    double flops = 0.0;
    std::uint64_t weightBytes = 0;
    std::uint64_t kvBytes = 0;
    std::uint64_t gemmOps = 0;
    std::uint64_t gemvOps = 0;
    std::uint64_t elementwiseOps = 0;
};

OpStats summarize(const std::vector<Op> &ops);

/** Op list of the sum stage over @p l_in input tokens. */
std::vector<Op> sumStageOps(const ModelConfig &cfg, std::uint64_t l_in);

/**
 * Op list of one gen stage when the attended context (input + generated
 * so far, including the current token) is @p context tokens.
 */
std::vector<Op> genStageOps(const ModelConfig &cfg,
                            std::uint64_t context);

/** An end-to-end inference request (the paper's workload: 64 in, up to
 *  1024 out). */
struct InferenceRequest
{
    std::uint64_t inputTokens = 64;
    std::uint64_t outputTokens = 1024;

    /** Total attended context once fully generated. */
    std::uint64_t
    totalTokens() const
    {
        return inputTokens + outputTokens;
    }

    /** True when the request is well-formed for @p cfg (non-empty
     *  prompt, at least one generated token, context within the
     *  model's positional range). */
    bool fits(const ModelConfig &cfg) const;

    /** fatal() unless fits(cfg); engines call this before running. */
    void validate(const ModelConfig &cfg) const;
};

/** Total FLOPs of a request (sum + all gen stages). */
double requestFlops(const ModelConfig &cfg, const InferenceRequest &req);

/** Total weight bytes streamed for a request assuming no reuse across
 *  stages (each stage reads all layer weights once). */
std::uint64_t requestWeightTraffic(const ModelConfig &cfg,
                                   const InferenceRequest &req);

} // namespace llm
} // namespace cxlpnm

#endif // CXLPNM_LLM_WORKLOAD_HH
