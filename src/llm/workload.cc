#include "llm/workload.hh"

#include "sim/logging.hh"

namespace cxlpnm
{
namespace llm
{

const char *
opKindName(OpKind k)
{
    switch (k) {
      case OpKind::Embed: return "Embed";
      case OpKind::LayerNorm: return "LayerNorm";
      case OpKind::Qkv: return "QKV";
      case OpKind::AttnScore: return "AttnScore";
      case OpKind::AttnSoftmax: return "AttnSoftmax";
      case OpKind::AttnContext: return "AttnContext";
      case OpKind::Proj: return "Proj";
      case OpKind::Residual: return "Residual";
      case OpKind::Fc1: return "FC1";
      case OpKind::Gelu: return "GELU";
      case OpKind::Fc2: return "FC2";
      case OpKind::LmHead: return "LMHead";
    }
    return "<bad>";
}

namespace
{

/** Shared layer structure; @p m_tokens is 1 for gen stages. */
void
appendLayerOps(std::vector<Op> &ops, const ModelConfig &cfg, int layer,
               std::uint64_t m_tokens, std::uint64_t context,
               bool gen_stage)
{
    const std::uint64_t d = cfg.dModel;
    const std::uint64_t f = cfg.ffnDim;
    const std::uint64_t h = cfg.numHeads;
    const std::uint64_t dh = cfg.headDim();

    auto add = [&](OpKind kind, std::uint64_t m, std::uint64_t n,
                   std::uint64_t k, std::uint64_t wbytes,
                   std::uint64_t kvbytes) {
        Op op;
        op.kind = kind;
        op.m = m;
        op.n = n;
        op.k = k;
        op.weightBytes = wbytes;
        op.kvBytes = kvbytes;
        op.layer = layer;
        ops.push_back(op);
    };

    // Pre-attention LayerNorm (gamma+beta stream).
    add(OpKind::LayerNorm, m_tokens, d, 0, 2 * 2 * d, 0);
    // Fused QKV projection: (m x d) . (d x 3d).
    add(OpKind::Qkv, m_tokens, 3 * d, d, 2 * (d * 3 * d + 3 * d), 0);
    // Attention scores: per head (m x dh) . (dh x context). In gen
    // stages K streams from the KV cache in device/GPU memory.
    add(OpKind::AttnScore, m_tokens * h, context, dh, 0,
        gen_stage ? 2 * context * d : 0);
    add(OpKind::AttnSoftmax, m_tokens * h, context, 0, 0, 0);
    // Context: per head (m x context) . (context x dh); V streams.
    add(OpKind::AttnContext, m_tokens * h, dh, context, 0,
        gen_stage ? 2 * context * d : 0);
    // Output projection.
    add(OpKind::Proj, m_tokens, d, d, 2 * (d * d + d), 0);
    add(OpKind::Residual, m_tokens, d, 0, 0, 0);
    // FFN.
    add(OpKind::LayerNorm, m_tokens, d, 0, 2 * 2 * d, 0);
    add(OpKind::Fc1, m_tokens, f, d, 2 * (d * f + f), 0);
    add(OpKind::Gelu, m_tokens, f, 0, 0, 0);
    add(OpKind::Fc2, m_tokens, d, f, 2 * (f * d + d), 0);
    add(OpKind::Residual, m_tokens, d, 0, 0, 0);
}

void
appendHead(std::vector<Op> &ops, const ModelConfig &cfg,
           std::uint64_t m_tokens)
{
    // Final LayerNorm + LM head (tied embedding, d x vocab).
    Op ln;
    ln.kind = OpKind::LayerNorm;
    ln.m = m_tokens;
    ln.n = cfg.dModel;
    ln.weightBytes = 2 * 2 * cfg.dModel;
    ops.push_back(ln);

    Op head;
    head.kind = OpKind::LmHead;
    head.m = m_tokens;
    head.n = cfg.vocabSize;
    head.k = cfg.dModel;
    head.weightBytes =
        2ull * cfg.vocabSize * cfg.dModel; // tied, still streamed
    ops.push_back(head);
}

} // namespace

std::vector<Op>
sumStageOps(const ModelConfig &cfg, std::uint64_t l_in)
{
    fatal_if(l_in == 0, "sum stage needs at least one input token");
    std::vector<Op> ops;
    Op embed;
    embed.kind = OpKind::Embed;
    embed.m = l_in;
    embed.n = cfg.dModel;
    embed.weightBytes = 2ull * l_in * cfg.dModel * 2; // tok+pos rows
    ops.push_back(embed);

    for (std::uint32_t l = 0; l < cfg.numLayers; ++l)
        appendLayerOps(ops, cfg, static_cast<int>(l), l_in, l_in, false);
    // Only the last token's logits are needed in the sum stage.
    appendHead(ops, cfg, 1);
    return ops;
}

std::vector<Op>
genStageOps(const ModelConfig &cfg, std::uint64_t context)
{
    fatal_if(context == 0, "gen stage needs non-empty context");
    std::vector<Op> ops;
    Op embed;
    embed.kind = OpKind::Embed;
    embed.m = 1;
    embed.n = cfg.dModel;
    embed.weightBytes = 2ull * cfg.dModel * 2;
    ops.push_back(embed);

    for (std::uint32_t l = 0; l < cfg.numLayers; ++l)
        appendLayerOps(ops, cfg, static_cast<int>(l), 1, context, true);
    appendHead(ops, cfg, 1);
    return ops;
}

bool
InferenceRequest::fits(const ModelConfig &cfg) const
{
    return inputTokens > 0 && outputTokens > 0 &&
        totalTokens() <= cfg.maxPositions;
}

void
InferenceRequest::validate(const ModelConfig &cfg) const
{
    fatal_if(inputTokens == 0, "request needs a non-empty prompt");
    fatal_if(outputTokens == 0,
             "request must generate at least one token");
    fatal_if(totalTokens() > cfg.maxPositions, "request context ",
             totalTokens(), " exceeds ", cfg.name, " max positions ",
             cfg.maxPositions);
}

OpStats
summarize(const std::vector<Op> &ops)
{
    OpStats s;
    for (const Op &op : ops) {
        s.flops += op.flops();
        s.weightBytes += op.weightBytes;
        s.kvBytes += op.kvBytes;
        if (op.isGemm())
            ++s.gemmOps;
        else if (op.isGemv())
            ++s.gemvOps;
        else
            ++s.elementwiseOps;
    }
    return s;
}

double
requestFlops(const ModelConfig &cfg, const InferenceRequest &req)
{
    double total = summarize(sumStageOps(cfg, req.inputTokens)).flops;
    for (std::uint64_t t = 0; t < req.outputTokens; ++t)
        total +=
            summarize(genStageOps(cfg, req.inputTokens + t + 1)).flops;
    return total;
}

std::uint64_t
requestWeightTraffic(const ModelConfig &cfg, const InferenceRequest &req)
{
    std::uint64_t total =
        summarize(sumStageOps(cfg, req.inputTokens)).weightBytes;
    for (std::uint64_t t = 0; t < req.outputTokens; ++t)
        total += summarize(genStageOps(cfg, req.inputTokens + t + 1))
                     .weightBytes;
    return total;
}

} // namespace llm
} // namespace cxlpnm
