/**
 * @file
 * Double-precision reference implementation of decoder-only inference.
 *
 * The golden model the accelerator's functional end-to-end output is
 * validated against. It consumes the same FP16-quantised synthetic
 * weights as the device loader, computes everything in double, and keeps
 * a growing KV cache exactly like the gen stage of Fig. 1.
 */

#ifndef CXLPNM_LLM_REFERENCE_MODEL_HH
#define CXLPNM_LLM_REFERENCE_MODEL_HH

#include <cstdint>
#include <vector>

#include "llm/model_config.hh"
#include "llm/synthetic.hh"
#include "numeric/tensor.hh"

namespace cxlpnm
{
namespace llm
{

/** CPU double-precision decoder with KV cache. */
class ReferenceModel
{
  public:
    ReferenceModel(const ModelConfig &cfg, std::uint64_t seed);

    const ModelConfig &config() const { return cfg_; }

    /**
     * Consume the prompt (sum stage). Returns the logits of the last
     * prompt token (1 x vocab). Resets any previous sequence.
     */
    Tensor<double> prefill(const std::vector<std::uint32_t> &tokens);

    /** One gen stage: append @p token, return its logits. */
    Tensor<double> decodeStep(std::uint32_t token);

    /** Greedy decoding: prefill then generate @p n tokens. */
    std::vector<std::uint32_t>
    greedyGenerate(const std::vector<std::uint32_t> &prompt,
                   std::size_t n);

    /** Tokens attended so far (prompt + generated). */
    std::size_t contextLength() const { return seqLen_; }

  private:
    /** Forward @p m new tokens whose embeddings are in @p x (m x d). */
    Tensor<double> forward(Tensor<double> x);

    Tensor<double> weight(int layer, WeightSlot slot) const;

    ModelConfig cfg_;
    std::uint64_t seed_;

    /** Per-layer KV cache, each seqLen_ x d. */
    std::vector<Tensor<double>> kCache_;
    std::vector<Tensor<double>> vCache_;
    std::size_t seqLen_ = 0;
};

} // namespace llm
} // namespace cxlpnm

#endif // CXLPNM_LLM_REFERENCE_MODEL_HH
