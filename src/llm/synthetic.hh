/**
 * @file
 * Deterministic synthetic weights.
 *
 * The paper runs pre-trained OPT checkpoints; we have none, so both the
 * reference model and the device-memory loader draw every tensor from
 * the same seeded generator. Values are FP16-quantised at the source so
 * the double-precision reference and the FP16 accelerator start from
 * bit-identical parameters and differ only in arithmetic.
 */

#ifndef CXLPNM_LLM_SYNTHETIC_HH
#define CXLPNM_LLM_SYNTHETIC_HH

#include <cstdint>
#include <string>

#include "llm/model_config.hh"
#include "numeric/tensor.hh"

namespace cxlpnm
{
namespace llm
{

/** Weight tensors of one decoder layer / the embedding block. */
enum class WeightSlot
{
    TokEmbed,  // vocab x d
    PosEmbed,  // maxPositions x d
    Ln1Gamma,  // 1 x d
    Ln1Beta,   // 1 x d
    WQkv,      // d x 3d
    BQkv,      // 1 x 3d
    WProj,     // d x d
    BProj,     // 1 x d
    Ln2Gamma,  // 1 x d
    Ln2Beta,   // 1 x d
    WFc1,      // d x f
    BFc1,      // 1 x f
    WFc2,      // f x d
    BFc2,      // 1 x d
    LnfGamma,  // 1 x d
    LnfBeta,   // 1 x d
};

const char *weightSlotName(WeightSlot slot);

/** Shape of @p slot for @p cfg (layer-independent). */
void weightShape(const ModelConfig &cfg, WeightSlot slot,
                 std::uint32_t &rows, std::uint32_t &cols);

/**
 * The FP16-quantised synthetic tensor for (model seed, layer, slot).
 * @p layer is ignored for the global slots (embeddings, final norm).
 */
HalfTensor makeWeight(const ModelConfig &cfg, std::uint64_t seed,
                      int layer, WeightSlot slot);

} // namespace llm
} // namespace cxlpnm

#endif // CXLPNM_LLM_SYNTHETIC_HH
