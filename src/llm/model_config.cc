#include "llm/model_config.hh"

#include "sim/logging.hh"

namespace cxlpnm
{
namespace llm
{

std::uint64_t
ModelConfig::layerParamCount() const
{
    const std::uint64_t d = dModel;
    const std::uint64_t f = ffnDim;
    // QKV projections + output projection (weights + biases).
    const std::uint64_t attn = 3 * (d * d + d) + (d * d + d);
    // Two FC layers.
    const std::uint64_t ffn = (d * f + f) + (f * d + d);
    // Two LayerNorms (gamma + beta).
    const std::uint64_t norms = 2 * (2 * d);
    return attn + ffn + norms;
}

std::uint64_t
ModelConfig::paramCount() const
{
    const std::uint64_t d = dModel;
    // Token + positional embeddings, final LayerNorm. The LM head is
    // tied to the token embedding (OPT/GPT convention).
    const std::uint64_t embed =
        static_cast<std::uint64_t>(vocabSize) * d +
        static_cast<std::uint64_t>(maxPositions) * d;
    return embed + numLayers * layerParamCount() + 2 * d;
}

double
ModelConfig::forwardFlops(std::uint64_t tokens,
                          std::uint64_t context) const
{
    const double d = dModel;
    const double f = ffnDim;
    const double t = static_cast<double>(tokens);
    const double c = static_cast<double>(context);
    // Per token per layer: QKV (3d^2), proj (d^2), FFN (2 d f) MACs,
    // plus attention score+context (2 * c * d) MACs.
    const double per_layer = t * (4.0 * d * d + 2.0 * d * f) +
        t * 2.0 * c * d;
    // LM head: t * vocab * d.
    const double head = t * static_cast<double>(vocabSize) * d;
    return 2.0 * (numLayers * per_layer + head);
}

namespace
{

ModelConfig
make(std::string name, std::uint32_t layers, std::uint32_t d,
     std::uint32_t heads)
{
    ModelConfig c;
    c.name = std::move(name);
    c.numLayers = layers;
    c.dModel = d;
    c.numHeads = heads;
    c.ffnDim = 4 * d;
    return c;
}

} // namespace

ModelConfig ModelConfig::opt125m() { return make("opt-125m", 12, 768, 12); }
ModelConfig ModelConfig::opt350m() { return make("opt-350m", 24, 1024, 16); }
ModelConfig ModelConfig::opt1_3b() { return make("opt-1.3b", 24, 2048, 32); }
ModelConfig ModelConfig::opt2_7b() { return make("opt-2.7b", 32, 2560, 32); }
ModelConfig ModelConfig::opt6_7b() { return make("opt-6.7b", 32, 4096, 32); }
ModelConfig ModelConfig::opt13b() { return make("opt-13b", 40, 5120, 40); }
ModelConfig ModelConfig::opt30b() { return make("opt-30b", 48, 7168, 56); }
ModelConfig ModelConfig::opt66b() { return make("opt-66b", 64, 9216, 72); }
ModelConfig ModelConfig::opt175b()
{
    return make("opt-175b", 96, 12288, 96);
}

ModelConfig
ModelConfig::gpt3()
{
    ModelConfig c = make("gpt-3.5", 96, 12288, 96);
    c.vocabSize = 50257;
    return c;
}

ModelConfig
ModelConfig::tiny()
{
    ModelConfig c = make("tiny", 2, 64, 4);
    c.vocabSize = 256;
    c.maxPositions = 64;
    return c;
}

ModelConfig
ModelConfig::byName(const std::string &name)
{
    for (const ModelConfig &c : optFamily())
        if (c.name == name)
            return c;
    if (name == "gpt-3.5")
        return gpt3();
    if (name == "tiny")
        return tiny();
    fatal("unknown model '", name, "'");
}

std::vector<ModelConfig>
ModelConfig::optFamily()
{
    return {opt125m(), opt350m(), opt1_3b(), opt2_7b(), opt6_7b(),
            opt13b(),  opt30b(),  opt66b(),  opt175b()};
}

} // namespace llm
} // namespace cxlpnm
