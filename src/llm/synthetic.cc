#include "llm/synthetic.hh"

#include "sim/logging.hh"
#include "sim/random.hh"

namespace cxlpnm
{
namespace llm
{

const char *
weightSlotName(WeightSlot slot)
{
    switch (slot) {
      case WeightSlot::TokEmbed: return "tok_embed";
      case WeightSlot::PosEmbed: return "pos_embed";
      case WeightSlot::Ln1Gamma: return "ln1_gamma";
      case WeightSlot::Ln1Beta: return "ln1_beta";
      case WeightSlot::WQkv: return "w_qkv";
      case WeightSlot::BQkv: return "b_qkv";
      case WeightSlot::WProj: return "w_proj";
      case WeightSlot::BProj: return "b_proj";
      case WeightSlot::Ln2Gamma: return "ln2_gamma";
      case WeightSlot::Ln2Beta: return "ln2_beta";
      case WeightSlot::WFc1: return "w_fc1";
      case WeightSlot::BFc1: return "b_fc1";
      case WeightSlot::WFc2: return "w_fc2";
      case WeightSlot::BFc2: return "b_fc2";
      case WeightSlot::LnfGamma: return "lnf_gamma";
      case WeightSlot::LnfBeta: return "lnf_beta";
    }
    return "<bad>";
}

void
weightShape(const ModelConfig &cfg, WeightSlot slot, std::uint32_t &rows,
            std::uint32_t &cols)
{
    const std::uint32_t d = cfg.dModel;
    const std::uint32_t f = cfg.ffnDim;
    switch (slot) {
      case WeightSlot::TokEmbed: rows = cfg.vocabSize; cols = d; return;
      case WeightSlot::PosEmbed: rows = cfg.maxPositions; cols = d; return;
      case WeightSlot::WQkv: rows = d; cols = 3 * d; return;
      case WeightSlot::BQkv: rows = 1; cols = 3 * d; return;
      case WeightSlot::WProj: rows = d; cols = d; return;
      case WeightSlot::WFc1: rows = d; cols = f; return;
      case WeightSlot::BFc1: rows = 1; cols = f; return;
      case WeightSlot::WFc2: rows = f; cols = d; return;
      case WeightSlot::Ln1Gamma:
      case WeightSlot::Ln1Beta:
      case WeightSlot::BProj:
      case WeightSlot::Ln2Gamma:
      case WeightSlot::Ln2Beta:
      case WeightSlot::BFc2:
      case WeightSlot::LnfGamma:
      case WeightSlot::LnfBeta:
        rows = 1;
        cols = d;
        return;
    }
    panic("bad weight slot");
}

namespace
{

bool
isGamma(WeightSlot slot)
{
    return slot == WeightSlot::Ln1Gamma || slot == WeightSlot::Ln2Gamma ||
        slot == WeightSlot::LnfGamma;
}

} // namespace

HalfTensor
makeWeight(const ModelConfig &cfg, std::uint64_t seed, int layer,
           WeightSlot slot)
{
    std::uint32_t rows = 0, cols = 0;
    weightShape(cfg, slot, rows, cols);

    // Stable per-tensor stream: mix the model seed, the layer and the
    // slot id through SplitMix64's own scrambler.
    SplitMix64 mix(seed ^ (0x51ed270f5ull * (layer + 2)) ^
                   (0x9e3779b9ull * (static_cast<int>(slot) + 1)));
    const std::uint64_t stream_seed = mix.next();

    HalfTensor t(rows, cols);
    // GPT-style init: N(0, 0.02) for weights; gammas near 1.
    t.fillGaussian(stream_seed, 0.02);
    if (isGamma(slot)) {
        for (std::size_t i = 0; i < t.size(); ++i)
            t.data()[i] = Half(1.0f + t.data()[i].toFloat());
    }
    return t;
}

} // namespace llm
} // namespace cxlpnm
