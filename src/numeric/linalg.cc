#include "numeric/linalg.hh"

#include <cmath>
#include <limits>
#include <vector>

#include "sim/logging.hh"

namespace cxlpnm
{
namespace linalg
{

void
gemm(const Tensor<double> &a, const Tensor<double> &b, Tensor<double> &out)
{
    panic_if(a.cols() != b.rows(), "gemm inner dim mismatch: ", a.cols(),
             " vs ", b.rows());
    panic_if(out.rows() != a.rows() || out.cols() != b.cols(),
             "gemm output shape mismatch");

    const std::size_t m = a.rows(), n = b.cols(), kk = a.cols();

    // Pack B transposed so both dot-product operands stream
    // contiguously (B's column walk is the cache killer for large k).
    // The accumulation below still runs k = 0..kk-1 per element with a
    // single accumulator: identical order, identical results.
    static thread_local std::vector<double> bt;
    if (bt.size() < n * kk)
        bt.resize(n * kk);
    for (std::size_t k = 0; k < kk; ++k) {
        const double *brow = b.data() + k * n;
        for (std::size_t j = 0; j < n; ++j)
            bt[j * kk + k] = brow[j];
    }

    for (std::size_t i = 0; i < m; ++i) {
        const double *arow = a.data() + i * kk;
        for (std::size_t j = 0; j < n; ++j) {
            const double *bcol = bt.data() + j * kk;
            double acc = 0.0;
            for (std::size_t k = 0; k < kk; ++k)
                acc += arow[k] * bcol[k];
            out.at(i, j) = acc;
        }
    }
}

void
gemmBias(const Tensor<double> &a, const Tensor<double> &b,
         const Tensor<double> &bias, Tensor<double> &out)
{
    panic_if(bias.rows() != 1 || bias.cols() != b.cols(),
             "gemmBias bias must be 1 x n");
    gemm(a, b, out);
    for (std::size_t i = 0; i < out.rows(); ++i)
        for (std::size_t j = 0; j < out.cols(); ++j)
            out.at(i, j) += bias.at(0, j);
}

void
gemv(const Tensor<double> &x, const Tensor<double> &w, Tensor<double> &y)
{
    panic_if(x.rows() != 1, "gemv input must be 1 x k");
    gemm(x, w, y);
}

void
softmaxRows(Tensor<double> &t)
{
    for (std::size_t i = 0; i < t.rows(); ++i) {
        double mx = -std::numeric_limits<double>::infinity();
        for (std::size_t j = 0; j < t.cols(); ++j)
            mx = std::max(mx, t.at(i, j));
        double sum = 0.0;
        for (std::size_t j = 0; j < t.cols(); ++j) {
            t.at(i, j) = std::exp(t.at(i, j) - mx);
            sum += t.at(i, j);
        }
        for (std::size_t j = 0; j < t.cols(); ++j)
            t.at(i, j) /= sum;
    }
}

void
maskedSoftmaxRows(Tensor<double> &t, std::size_t offset)
{
    const double ninf = -std::numeric_limits<double>::infinity();
    for (std::size_t i = 0; i < t.rows(); ++i)
        for (std::size_t j = 0; j < t.cols(); ++j)
            if (j > i + offset)
                t.at(i, j) = ninf;
    softmaxRows(t);
}

double
gelu(double x)
{
    // GPT's tanh approximation:
    // 0.5 x (1 + tanh(sqrt(2/pi) (x + 0.044715 x^3)))
    constexpr double k = 0.7978845608028654; // sqrt(2/pi)
    return 0.5 * x * (1.0 + std::tanh(k * (x + 0.044715 * x * x * x)));
}

void
geluInPlace(Tensor<double> &t)
{
    for (std::size_t i = 0; i < t.rows(); ++i)
        for (std::size_t j = 0; j < t.cols(); ++j)
            t.at(i, j) = gelu(t.at(i, j));
}

void
layerNormRows(const Tensor<double> &x, const Tensor<double> &gamma,
              const Tensor<double> &beta, double eps, Tensor<double> &out)
{
    panic_if(gamma.rows() != 1 || gamma.cols() != x.cols(),
             "layerNorm gamma must be 1 x n");
    panic_if(beta.rows() != 1 || beta.cols() != x.cols(),
             "layerNorm beta must be 1 x n");
    panic_if(out.rows() != x.rows() || out.cols() != x.cols(),
             "layerNorm output shape mismatch");

    const double n = static_cast<double>(x.cols());
    for (std::size_t i = 0; i < x.rows(); ++i) {
        double mean = 0.0;
        for (std::size_t j = 0; j < x.cols(); ++j)
            mean += x.at(i, j);
        mean /= n;
        double var = 0.0;
        for (std::size_t j = 0; j < x.cols(); ++j) {
            double d = x.at(i, j) - mean;
            var += d * d;
        }
        var /= n;
        const double inv = 1.0 / std::sqrt(var + eps);
        for (std::size_t j = 0; j < x.cols(); ++j) {
            out.at(i, j) = (x.at(i, j) - mean) * inv * gamma.at(0, j) +
                beta.at(0, j);
        }
    }
}

void
add(const Tensor<double> &a, const Tensor<double> &b, Tensor<double> &out)
{
    panic_if(a.rows() != b.rows() || a.cols() != b.cols(),
             "add shape mismatch");
    panic_if(out.rows() != a.rows() || out.cols() != a.cols(),
             "add output shape mismatch");
    for (std::size_t i = 0; i < a.rows(); ++i)
        for (std::size_t j = 0; j < a.cols(); ++j)
            out.at(i, j) = a.at(i, j) + b.at(i, j);
}

Tensor<double>
transpose(const Tensor<double> &a)
{
    Tensor<double> out(a.cols(), a.rows());
    for (std::size_t i = 0; i < a.rows(); ++i)
        for (std::size_t j = 0; j < a.cols(); ++j)
            out.at(j, i) = a.at(i, j);
    return out;
}

std::size_t
argmaxRow(const Tensor<double> &t, std::size_t row)
{
    panic_if(t.cols() == 0, "argmax of empty row");
    std::size_t best = 0;
    for (std::size_t j = 1; j < t.cols(); ++j)
        if (t.at(row, j) > t.at(row, best))
            best = j;
    return best;
}

} // namespace linalg
} // namespace cxlpnm
