/**
 * @file
 * A minimal owning 2-D row-major tensor used by the functional simulator
 * and the reference model. One-dimensional data is a 1 x N tensor.
 */

#ifndef CXLPNM_NUMERIC_TENSOR_HH
#define CXLPNM_NUMERIC_TENSOR_HH

#include <cmath>
#include <cstddef>
#include <vector>

#include "numeric/fp16.hh"
#include "sim/logging.hh"
#include "sim/random.hh"

namespace cxlpnm
{

/** Row-major matrix of T (Half, float or double). */
template <typename T>
class Tensor
{
  public:
    Tensor() : rows_(0), cols_(0) {}

    Tensor(std::size_t rows, std::size_t cols)
        : rows_(rows), cols_(cols), data_(rows * cols, T{})
    {}

    std::size_t rows() const { return rows_; }
    std::size_t cols() const { return cols_; }
    std::size_t size() const { return data_.size(); }
    bool empty() const { return data_.empty(); }

    T &
    at(std::size_t r, std::size_t c)
    {
        panic_if(r >= rows_ || c >= cols_, "tensor index (", r, ",", c,
                 ") out of bounds (", rows_, "x", cols_, ")");
        return data_[r * cols_ + c];
    }

    const T &
    at(std::size_t r, std::size_t c) const
    {
        panic_if(r >= rows_ || c >= cols_, "tensor index (", r, ",", c,
                 ") out of bounds (", rows_, "x", cols_, ")");
        return data_[r * cols_ + c];
    }

    T &operator()(std::size_t r, std::size_t c) { return at(r, c); }
    const T &
    operator()(std::size_t r, std::size_t c) const
    {
        return at(r, c);
    }

    T *data() { return data_.data(); }
    const T *data() const { return data_.data(); }

    /** Bytes occupied by the element payload. */
    std::size_t bytes() const { return data_.size() * sizeof(T); }

    /** Fill with Gaussian(0, stddev) values from a deterministic seed. */
    void
    fillGaussian(std::uint64_t seed, double stddev)
    {
        SplitMix64 rng(seed);
        for (T &v : data_)
            v = T(rng.nextGaussian() * stddev);
    }

    void
    fill(T value)
    {
        for (T &v : data_)
            v = value;
    }

    /** Elementwise conversion to another scalar type. */
    template <typename U>
    Tensor<U>
    cast() const
    {
        Tensor<U> out(rows_, cols_);
        for (std::size_t i = 0; i < data_.size(); ++i)
            out.data()[i] = U(static_cast<double>(data_[i]));
        return out;
    }

  private:
    std::size_t rows_;
    std::size_t cols_;
    std::vector<T> data_;
};

using HalfTensor = Tensor<Half>;

/** Largest absolute elementwise difference, |a - b|_inf, in double. */
template <typename A, typename B>
double
maxAbsDiff(const Tensor<A> &a, const Tensor<B> &b)
{
    panic_if(a.rows() != b.rows() || a.cols() != b.cols(),
             "maxAbsDiff shape mismatch");
    double m = 0.0;
    for (std::size_t r = 0; r < a.rows(); ++r) {
        for (std::size_t c = 0; c < a.cols(); ++c) {
            double d = static_cast<double>(a.at(r, c)) -
                static_cast<double>(b.at(r, c));
            if (d < 0)
                d = -d;
            if (d > m)
                m = d;
        }
    }
    return m;
}

/** Largest |a-b| / max(1, |b|) elementwise relative difference. */
template <typename A, typename B>
double
maxRelDiff(const Tensor<A> &a, const Tensor<B> &b)
{
    panic_if(a.rows() != b.rows() || a.cols() != b.cols(),
             "maxRelDiff shape mismatch");
    double m = 0.0;
    for (std::size_t r = 0; r < a.rows(); ++r) {
        for (std::size_t c = 0; c < a.cols(); ++c) {
            double x = static_cast<double>(a.at(r, c));
            double y = static_cast<double>(b.at(r, c));
            double denom = std::abs(y) > 1.0 ? std::abs(y) : 1.0;
            double d = std::abs(x - y) / denom;
            if (d > m)
                m = d;
        }
    }
    return m;
}

} // namespace cxlpnm

#endif // CXLPNM_NUMERIC_TENSOR_HH
