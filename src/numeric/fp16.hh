/**
 * @file
 * Software IEEE 754 binary16 ("half", the paper's FP16 datatype).
 *
 * The accelerator's functional model computes on Half values so that the
 * simulated MPU/VPU produce bit-faithful FP16 results that can be compared
 * against a double-precision reference within analytic error bounds.
 *
 * Arithmetic is performed by converting to float, operating, and rounding
 * back. Because float carries 24 significand bits >= 2*11 + 2, the double
 * rounding is innocuous for +, -, *, / (Figueroa's theorem), i.e. results
 * equal directly-rounded binary16 arithmetic.
 *
 * Performance layer (see DESIGN.md §9): the widening conversion reads a
 * 65,536-entry float table built at compile time from the exact
 * bit-manipulation routine (kept as halfToFloat, the reference); the
 * narrowing conversion uses a branch-light round-to-nearest-even
 * algorithm verified bit-identical to the reference fromFloatReference
 * on every rounding boundary. Bulk span conversions (fp16::toFloatSpan
 * and friends) additionally dispatch to F16C/AVX2 kernels at runtime
 * where available; every path produces the same bits.
 */

#ifndef CXLPNM_NUMERIC_FP16_HH
#define CXLPNM_NUMERIC_FP16_HH

#include <array>
#include <bit>
#include <cstddef>
#include <cstdint>

namespace cxlpnm
{

namespace fp16
{
/** half -> float lookup table, indexed by the raw binary16 bits. */
extern const std::array<float, 1 << 16> h2fTable;
} // namespace fp16

/** An IEEE 754 binary16 value. */
class Half
{
  public:
    /** Zero-initialised. */
    constexpr Half() : bits_(0) {}

    /** Round a float to binary16 (round-to-nearest-even). */
    explicit Half(float f) : bits_(fromFloat(f)) {}
    explicit Half(double d) : Half(static_cast<float>(d)) {}

    /** Reinterpret raw storage bits as a Half. */
    static constexpr Half
    fromBits(std::uint16_t bits)
    {
        Half h;
        h.bits_ = bits;
        return h;
    }

    constexpr std::uint16_t bits() const { return bits_; }

    /** Exact widening conversion (table lookup). */
    float toFloat() const { return fp16::h2fTable[bits_]; }
    explicit operator float() const { return toFloat(); }
    explicit operator double() const { return toFloat(); }

    bool isNan() const;
    bool isInf() const;
    bool isZero() const;
    bool isSubnormal() const;

    /** IEEE equality: NaN != NaN, +0 == -0. */
    bool operator==(const Half &o) const;
    bool operator<(const Half &o) const
    {
        return toFloat() < o.toFloat();
    }

    Half operator+(Half o) const { return Half(toFloat() + o.toFloat()); }
    Half operator-(Half o) const { return Half(toFloat() - o.toFloat()); }
    Half operator*(Half o) const { return Half(toFloat() * o.toFloat()); }
    Half operator/(Half o) const { return Half(toFloat() / o.toFloat()); }
    Half operator-() const { return fromBits(bits_ ^ 0x8000); }

    /**
     * Fast exact float -> binary16 rounding (RNE). Subnormal results are
     * rounded by the FP adder itself via the denormal-magic trick, so
     * the only branches left are the overflow/NaN and subnormal range
     * checks. Bit-identical to fromFloatReference for every input
     * (test_fp16 checks all rounding boundaries and special values).
     */
    static std::uint16_t fromFloat(float f);

    /**
     * Reference conversions, exposed for targeted unit tests and as the
     * generators of the fast paths: halfToFloat builds h2fTable;
     * fromFloatReference is the explicit round-to-nearest-even
     * bit-manipulation fromFloat is validated against.
     */
    static constexpr float halfToFloat(std::uint16_t bits);
    static std::uint16_t fromFloatReference(float f);

    /** Useful constants. */
    static constexpr Half zero() { return fromBits(0x0000); }
    static constexpr Half one() { return fromBits(0x3c00); }
    static constexpr Half infinity() { return fromBits(0x7c00); }
    static constexpr Half quietNan() { return fromBits(0x7e00); }
    /** Largest finite value, 65504. */
    static constexpr Half max() { return fromBits(0x7bff); }
    /** Smallest positive normal, 2^-14. */
    static constexpr Half minNormal() { return fromBits(0x0400); }
    /** Smallest positive subnormal, 2^-24. */
    static constexpr Half minSubnormal() { return fromBits(0x0001); }

  private:
    std::uint16_t bits_;
};

constexpr float
Half::halfToFloat(std::uint16_t bits)
{
    constexpr int f32ManBits = 23;
    constexpr int f16ManBits = 10;
    constexpr int f32Bias = 127;
    constexpr int f16Bias = 15;

    const std::uint32_t sign = static_cast<std::uint32_t>(bits & 0x8000)
        << 16;
    const std::uint32_t exp = (bits >> f16ManBits) & 0x1fu;
    std::uint32_t man = bits & 0x3ffu;

    std::uint32_t out;
    if (exp == 0x1f) {
        // Inf/NaN.
        out = sign | 0x7f800000u | (man << (f32ManBits - f16ManBits));
    } else if (exp != 0) {
        // Normal.
        out = sign |
            ((exp - f16Bias + f32Bias) << f32ManBits) |
            (man << (f32ManBits - f16ManBits));
    } else if (man != 0) {
        // Subnormal: normalise into float's normal range. With the
        // leading set bit of man at position k, the value is
        // 2^(k-24) * (1 + lower/2^k); shift the k low bits up into the
        // top of the 10-bit fraction field and drop the leading 1.
        int shift = std::countl_zero(man) - (32 - 11); // == 10 - k
        man = (man << shift) & 0x3ffu;
        std::uint32_t e = static_cast<std::uint32_t>(
            -14 - shift + f32Bias); // == (k - 24) + 127
        out = sign | (e << f32ManBits) |
            (man << (f32ManBits - f16ManBits));
    } else {
        out = sign; // +-0
    }
    return std::bit_cast<float>(out);
}

/**
 * Fused multiply-add on binary16 operands: rounds once from a double
 * intermediate, matching a hardware MAC with a wide accumulator feeding a
 * final FP16 rounder.
 */
Half fmaHalf(Half a, Half b, Half c);

namespace fp16
{

/**
 * Bulk conversions over contiguous spans. The hot kernels (adder-tree
 * GEMV, PE-array GEMM, reductions) convert whole operand rows once
 * through these instead of per scalar. Each call produces bits
 * identical to the equivalent scalar loop; on x86 with F16C+AVX2 the
 * work is done 8 lanes at a time by the hardware converters.
 */

/** out[i] = float(in[i]) for i in [0, n). */
void toFloatSpan(const Half *in, float *out, std::size_t n);

/** out[i] = Half(in[i]) (round-to-nearest-even) for i in [0, n). */
void fromFloatSpan(const float *in, Half *out, std::size_t n);

/**
 * out[i] = Half(a[i] * b[i]): the FP16 multiplier array feeding the
 * adder tree (multiply in float, round the product to binary16).
 */
void mulToHalfSpan(const float *a, const float *b, Half *out,
                   std::size_t n);

/**
 * One adder-tree level over float inputs: out[i] = Half(in[2i] +
 * in[2i+1]) for i in [0, pairs). Inputs are the widened values of the
 * previous level; each sum rounds to binary16 exactly as the scalar
 * Half operator+ does.
 */
void addPairsToHalfSpan(const float *in, Half *out, std::size_t pairs);

/**
 * Float-to-float variants that round through binary16 at each step —
 * out[i] = float(Half(...)) — so multi-level reductions can stay in
 * widened form without rewidening between levels. Exactly equivalent
 * (bit for bit) to going through Half and back.
 */
void mulRoundedSpan(const float *a, const float *b, float *out,
                    std::size_t n);
void addPairsRoundedSpan(const float *in, float *out, std::size_t pairs);

/** True when the span kernels use F16C/AVX2 (informational/bench). */
bool usingHardwareF16c();

} // namespace fp16

} // namespace cxlpnm

#endif // CXLPNM_NUMERIC_FP16_HH
