/**
 * @file
 * Software IEEE 754 binary16 ("half", the paper's FP16 datatype).
 *
 * The accelerator's functional model computes on Half values so that the
 * simulated MPU/VPU produce bit-faithful FP16 results that can be compared
 * against a double-precision reference within analytic error bounds.
 *
 * Arithmetic is performed by converting to float, operating, and rounding
 * back. Because float carries 24 significand bits >= 2*11 + 2, the double
 * rounding is innocuous for +, -, *, / (Figueroa's theorem), i.e. results
 * equal directly-rounded binary16 arithmetic.
 */

#ifndef CXLPNM_NUMERIC_FP16_HH
#define CXLPNM_NUMERIC_FP16_HH

#include <cstdint>

namespace cxlpnm
{

/** An IEEE 754 binary16 value. */
class Half
{
  public:
    /** Zero-initialised. */
    constexpr Half() : bits_(0) {}

    /** Round a float to binary16 (round-to-nearest-even). */
    explicit Half(float f) : bits_(fromFloat(f)) {}
    explicit Half(double d) : Half(static_cast<float>(d)) {}

    /** Reinterpret raw storage bits as a Half. */
    static constexpr Half
    fromBits(std::uint16_t bits)
    {
        Half h;
        h.bits_ = bits;
        return h;
    }

    constexpr std::uint16_t bits() const { return bits_; }

    /** Exact widening conversion. */
    float toFloat() const { return halfToFloat(bits_); }
    explicit operator float() const { return toFloat(); }
    explicit operator double() const { return toFloat(); }

    bool isNan() const;
    bool isInf() const;
    bool isZero() const;
    bool isSubnormal() const;

    /** IEEE equality: NaN != NaN, +0 == -0. */
    bool operator==(const Half &o) const;
    bool operator<(const Half &o) const
    {
        return toFloat() < o.toFloat();
    }

    Half operator+(Half o) const { return Half(toFloat() + o.toFloat()); }
    Half operator-(Half o) const { return Half(toFloat() - o.toFloat()); }
    Half operator*(Half o) const { return Half(toFloat() * o.toFloat()); }
    Half operator/(Half o) const { return Half(toFloat() / o.toFloat()); }
    Half operator-() const { return fromBits(bits_ ^ 0x8000); }

    /** Core conversion routines, exposed for targeted unit tests. */
    static std::uint16_t fromFloat(float f);
    static float halfToFloat(std::uint16_t bits);

    /** Useful constants. */
    static constexpr Half zero() { return fromBits(0x0000); }
    static constexpr Half one() { return fromBits(0x3c00); }
    static constexpr Half infinity() { return fromBits(0x7c00); }
    static constexpr Half quietNan() { return fromBits(0x7e00); }
    /** Largest finite value, 65504. */
    static constexpr Half max() { return fromBits(0x7bff); }
    /** Smallest positive normal, 2^-14. */
    static constexpr Half minNormal() { return fromBits(0x0400); }
    /** Smallest positive subnormal, 2^-24. */
    static constexpr Half minSubnormal() { return fromBits(0x0001); }

  private:
    std::uint16_t bits_;
};

/**
 * Fused multiply-add on binary16 operands: rounds once from a double
 * intermediate, matching a hardware MAC with a wide accumulator feeding a
 * final FP16 rounder.
 */
Half fmaHalf(Half a, Half b, Half c);

} // namespace cxlpnm

#endif // CXLPNM_NUMERIC_FP16_HH
