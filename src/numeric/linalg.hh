/**
 * @file
 * Reference linear algebra and transformer layer math in double precision.
 * These are the golden functions the accelerator's functional model and the
 * ReferenceModel are validated against.
 */

#ifndef CXLPNM_NUMERIC_LINALG_HH
#define CXLPNM_NUMERIC_LINALG_HH

#include <cstddef>

#include "numeric/tensor.hh"

namespace cxlpnm
{
namespace linalg
{

/** out = a (m x k) * b (k x n); out must be m x n. */
void gemm(const Tensor<double> &a, const Tensor<double> &b,
          Tensor<double> &out);

/** out = a * b + broadcast-row bias (1 x n). */
void gemmBias(const Tensor<double> &a, const Tensor<double> &b,
              const Tensor<double> &bias, Tensor<double> &out);

/** y (1 x n) = x (1 x k) * w (k x n). */
void gemv(const Tensor<double> &x, const Tensor<double> &w,
          Tensor<double> &y);

/** Row-wise softmax in place. */
void softmaxRows(Tensor<double> &t);

/**
 * Row-wise masked softmax: entries with col > row + offset are treated as
 * -inf (causal mask used by GPT attention).
 */
void maskedSoftmaxRows(Tensor<double> &t, std::size_t offset);

/** Tanh-approximation GELU (as used by GPT/OPT), elementwise. */
double gelu(double x);
void geluInPlace(Tensor<double> &t);

/**
 * LayerNorm over each row: (x - mean) / sqrt(var + eps) * gamma + beta.
 * gamma/beta are 1 x n.
 */
void layerNormRows(const Tensor<double> &x, const Tensor<double> &gamma,
                   const Tensor<double> &beta, double eps,
                   Tensor<double> &out);

/** out = a + b elementwise (residual connections). */
void add(const Tensor<double> &a, const Tensor<double> &b,
         Tensor<double> &out);

/** out = a (m x n) transposed -> (n x m). */
Tensor<double> transpose(const Tensor<double> &a);

/** Index of the maximum element of a 1 x n tensor (greedy decode). */
std::size_t argmaxRow(const Tensor<double> &t, std::size_t row);

} // namespace linalg
} // namespace cxlpnm

#endif // CXLPNM_NUMERIC_LINALG_HH
