#include "numeric/fp16.hh"

#include <bit>
#include <cmath>

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define CXLPNM_FP16_X86_DISPATCH 1
#include <immintrin.h>
#else
#define CXLPNM_FP16_X86_DISPATCH 0
#endif

namespace cxlpnm
{

namespace
{

constexpr std::uint32_t f32SignMask = 0x80000000u;
constexpr int f32ExpBits = 8;
constexpr int f32ManBits = 23;
constexpr int f16ManBits = 10;
constexpr int f32Bias = 127;
constexpr int f16Bias = 15;

constexpr std::array<float, 1 << 16>
buildH2fTable()
{
    std::array<float, 1 << 16> t{};
    for (std::uint32_t b = 0; b < (1u << 16); ++b)
        t[b] = Half::halfToFloat(static_cast<std::uint16_t>(b));
    return t;
}

} // namespace

namespace fp16
{
// Built at compile time from the reference routine: no startup cost, no
// static-initialisation-order hazard for code that converts during
// global construction.
constinit const std::array<float, 1 << 16> h2fTable = buildH2fTable();
} // namespace fp16

std::uint16_t
Half::fromFloatReference(float f)
{
    const std::uint32_t u = std::bit_cast<std::uint32_t>(f);
    const std::uint16_t sign =
        static_cast<std::uint16_t>((u & f32SignMask) >> 16);
    const std::uint32_t exp = (u >> f32ManBits) & 0xffu;
    std::uint32_t man = u & ((1u << f32ManBits) - 1);

    if (exp == 0xffu) {
        // Inf or NaN. Preserve NaN-ness (make it quiet, keep payload top
        // bits) and the sign.
        if (man == 0)
            return sign | 0x7c00;
        std::uint16_t payload =
            static_cast<std::uint16_t>(man >> (f32ManBits - f16ManBits));
        return sign | 0x7c00 | 0x0200 | payload;
    }

    // Unbiased exponent of the float value.
    const int e = static_cast<int>(exp) - f32Bias;

    if (e > f16Bias) {
        // Overflows binary16 range (max exponent is 15) -> +-inf.
        // Values rounding up to 2^16 (>= 65520) also overflow; catch them
        // below via the rounding path when e == 15... but e > 15 is
        // always inf.
        return sign | 0x7c00;
    }

    if (e >= -14) {
        // Normal half range (possibly rounding up into infinity).
        std::uint16_t hexp = static_cast<std::uint16_t>(e + f16Bias);
        std::uint32_t keep = man >> (f32ManBits - f16ManBits);
        std::uint32_t rest = man & ((1u << (f32ManBits - f16ManBits)) - 1);
        std::uint32_t halfway = 1u << (f32ManBits - f16ManBits - 1);

        std::uint16_t h = static_cast<std::uint16_t>(
            (hexp << f16ManBits) | keep);
        // Round to nearest even: up if rest > halfway, or exactly halfway
        // and the kept LSB is odd. Mantissa carry naturally increments the
        // exponent, and 0x7bff + 1 == 0x7c00 == inf, as required.
        if (rest > halfway || (rest == halfway && (keep & 1)))
            ++h;
        return sign | h;
    }

    if (e >= -24) {
        // Subnormal half range: value = man' * 2^-24 with man' < 2^10.
        // Build the 24-bit significand (implicit leading 1) and shift it
        // right so the result's unit is 2^-24.
        std::uint32_t sig = man | (1u << f32ManBits); // 24-bit significand
        int shift = -e - 14 + (f32ManBits - f16ManBits); // in [14..24]
        std::uint32_t keep = sig >> shift;
        std::uint32_t rest = sig & ((1u << shift) - 1);
        std::uint32_t halfway = 1u << (shift - 1);

        std::uint16_t h = static_cast<std::uint16_t>(keep);
        if (rest > halfway || (rest == halfway && (keep & 1)))
            ++h; // may carry into the min-normal encoding: correct.
        return sign | h;
    }

    // Too small: rounds to zero (ties at 2^-25 round to even = zero).
    // Exactly 2^-25 has e == -25, man == 0 -> halfway, rounds to 0.
    if (e == -25 && man != 0)
        return sign | 0x0001; // just above halfway rounds up
    return sign;
}

std::uint16_t
Half::fromFloat(float f)
{
    // Branch-light exact RNE narrowing. Normal-range values round via an
    // integer add of (half-ulp - 1) plus the kept-LSB ("round up the
    // odd-mantissa ties" makes nearest-even), which carries cleanly into
    // the exponent and into infinity at 0x7bff + 1. Values below 2^-14
    // are rounded by the FP adder: adding 0.5f aligns the significand so
    // the hardware's own nearest-even rounding produces the subnormal
    // mantissa directly ("denormal magic").
    constexpr std::uint32_t f32InfBits = 0x7f800000u;
    constexpr std::uint32_t f16MaxBits = (f32Bias + 16) << f32ManBits;
    constexpr std::uint32_t f16MinNormBits =
        (f32Bias - 14) << f32ManBits;
    constexpr float denormMagic = std::bit_cast<float>(
        static_cast<std::uint32_t>((f32Bias - f16Bias) +
                                   (f32ManBits - f16ManBits) + 1)
        << f32ManBits);

    std::uint32_t u = std::bit_cast<std::uint32_t>(f);
    const std::uint16_t sign =
        static_cast<std::uint16_t>((u & f32SignMask) >> 16);
    u &= ~f32SignMask;

    std::uint16_t o;
    if (u >= f16MaxBits) {
        if (u > f32InfBits) {
            // NaN: quiet it and keep the payload's top ten bits,
            // exactly like the reference.
            o = static_cast<std::uint16_t>(
                0x7e00 | ((u & ((1u << f32ManBits) - 1)) >>
                          (f32ManBits - f16ManBits)));
        } else {
            o = 0x7c00; // overflow (and inf) -> inf
        }
    } else if (u < f16MinNormBits) {
        const float v =
            std::bit_cast<float>(u) + denormMagic;
        o = static_cast<std::uint16_t>(std::bit_cast<std::uint32_t>(v) -
                                       std::bit_cast<std::uint32_t>(
                                           denormMagic));
    } else {
        const std::uint32_t mantOdd =
            (u >> (f32ManBits - f16ManBits)) & 1;
        u += (static_cast<std::uint32_t>(f16Bias - f32Bias)
              << f32ManBits) +
            ((1u << (f32ManBits - f16ManBits - 1)) - 1) + mantOdd;
        o = static_cast<std::uint16_t>(u >> (f32ManBits - f16ManBits));
    }
    return sign | o;
}

bool
Half::isNan() const
{
    return (bits_ & 0x7c00) == 0x7c00 && (bits_ & 0x3ff) != 0;
}

bool
Half::isInf() const
{
    return (bits_ & 0x7fff) == 0x7c00;
}

bool
Half::isZero() const
{
    return (bits_ & 0x7fff) == 0;
}

bool
Half::isSubnormal() const
{
    return (bits_ & 0x7c00) == 0 && (bits_ & 0x3ff) != 0;
}

bool
Half::operator==(const Half &o) const
{
    if (isNan() || o.isNan())
        return false;
    if (isZero() && o.isZero())
        return true;
    return bits_ == o.bits_;
}

Half
fmaHalf(Half a, Half b, Half c)
{
    const double prod = static_cast<double>(a.toFloat()) *
        static_cast<double>(b.toFloat()) +
        static_cast<double>(c.toFloat());
    // double -> float -> half double rounding is innocuous here too:
    // 53 >= 2*24 + 2 fails, but the product of two 11-bit significands
    // plus an 11-bit addend is exactly representable in double, so the
    // only rounding happens at the final half conversion via float
    // (24 >= 2*11 + 2 holds).
    return Half(static_cast<float>(prod));
}

namespace fp16
{

namespace
{

void
toFloatSpanScalar(const Half *in, float *out, std::size_t n)
{
    for (std::size_t i = 0; i < n; ++i)
        out[i] = h2fTable[in[i].bits()];
}

void
fromFloatSpanScalar(const float *in, Half *out, std::size_t n)
{
    for (std::size_t i = 0; i < n; ++i)
        out[i] = Half::fromBits(Half::fromFloat(in[i]));
}

void
mulToHalfSpanScalar(const float *a, const float *b, Half *out,
                    std::size_t n)
{
    for (std::size_t i = 0; i < n; ++i)
        out[i] = Half::fromBits(Half::fromFloat(a[i] * b[i]));
}

void
addPairsToHalfSpanScalar(const float *in, Half *out, std::size_t pairs)
{
    for (std::size_t i = 0; i < pairs; ++i)
        out[i] =
            Half::fromBits(Half::fromFloat(in[2 * i] + in[2 * i + 1]));
}

void
mulRoundedSpanScalar(const float *a, const float *b, float *out,
                     std::size_t n)
{
    for (std::size_t i = 0; i < n; ++i)
        out[i] = h2fTable[Half::fromFloat(a[i] * b[i])];
}

void
addPairsRoundedSpanScalar(const float *in, float *out, std::size_t pairs)
{
    for (std::size_t i = 0; i < pairs; ++i)
        out[i] = h2fTable[Half::fromFloat(in[2 * i] + in[2 * i + 1])];
}

#if CXLPNM_FP16_X86_DISPATCH

__attribute__((target("f16c,avx2"))) void
toFloatSpanF16c(const Half *in, float *out, std::size_t n)
{
    std::size_t i = 0;
    for (; i + 8 <= n; i += 8) {
        const __m128i h = _mm_loadu_si128(
            reinterpret_cast<const __m128i *>(in + i));
        _mm256_storeu_ps(out + i, _mm256_cvtph_ps(h));
    }
    toFloatSpanScalar(in + i, out + i, n - i);
}

__attribute__((target("f16c,avx2"))) void
fromFloatSpanF16c(const float *in, Half *out, std::size_t n)
{
    std::size_t i = 0;
    for (; i + 8 <= n; i += 8) {
        const __m256 v = _mm256_loadu_ps(in + i);
        const __m128i h = _mm256_cvtps_ph(
            v, _MM_FROUND_TO_NEAREST_INT | _MM_FROUND_NO_EXC);
        _mm_storeu_si128(reinterpret_cast<__m128i *>(out + i), h);
    }
    fromFloatSpanScalar(in + i, out + i, n - i);
}

__attribute__((target("f16c,avx2"))) void
mulToHalfSpanF16c(const float *a, const float *b, Half *out,
                  std::size_t n)
{
    std::size_t i = 0;
    for (; i + 8 <= n; i += 8) {
        const __m256 v =
            _mm256_mul_ps(_mm256_loadu_ps(a + i), _mm256_loadu_ps(b + i));
        const __m128i h = _mm256_cvtps_ph(
            v, _MM_FROUND_TO_NEAREST_INT | _MM_FROUND_NO_EXC);
        _mm_storeu_si128(reinterpret_cast<__m128i *>(out + i), h);
    }
    mulToHalfSpanScalar(a + i, b + i, out + i, n - i);
}

__attribute__((target("f16c,avx2"))) void
addPairsToHalfSpanF16c(const float *in, Half *out, std::size_t pairs)
{
    std::size_t i = 0;
    for (; i + 8 <= pairs; i += 8) {
        const __m256 lo = _mm256_loadu_ps(in + 2 * i);
        const __m256 hi = _mm256_loadu_ps(in + 2 * i + 8);
        // hadd interleaves 128-bit halves of its operands; a 64-bit
        // lane permute restores pair order 0..7.
        const __m256 sums = _mm256_castpd_ps(_mm256_permute4x64_pd(
            _mm256_castps_pd(_mm256_hadd_ps(lo, hi)),
            _MM_SHUFFLE(3, 1, 2, 0)));
        const __m128i h = _mm256_cvtps_ph(
            sums, _MM_FROUND_TO_NEAREST_INT | _MM_FROUND_NO_EXC);
        _mm_storeu_si128(reinterpret_cast<__m128i *>(out + i), h);
    }
    addPairsToHalfSpanScalar(in + 2 * i, out + i, pairs - i);
}

__attribute__((target("f16c,avx2"))) void
mulRoundedSpanF16c(const float *a, const float *b, float *out,
                   std::size_t n)
{
    std::size_t i = 0;
    for (; i + 8 <= n; i += 8) {
        const __m256 v =
            _mm256_mul_ps(_mm256_loadu_ps(a + i), _mm256_loadu_ps(b + i));
        const __m128i h = _mm256_cvtps_ph(
            v, _MM_FROUND_TO_NEAREST_INT | _MM_FROUND_NO_EXC);
        _mm256_storeu_ps(out + i, _mm256_cvtph_ps(h));
    }
    mulRoundedSpanScalar(a + i, b + i, out + i, n - i);
}

__attribute__((target("f16c,avx2"))) void
addPairsRoundedSpanF16c(const float *in, float *out, std::size_t pairs)
{
    std::size_t i = 0;
    for (; i + 8 <= pairs; i += 8) {
        const __m256 lo = _mm256_loadu_ps(in + 2 * i);
        const __m256 hi = _mm256_loadu_ps(in + 2 * i + 8);
        const __m256 sums = _mm256_castpd_ps(_mm256_permute4x64_pd(
            _mm256_castps_pd(_mm256_hadd_ps(lo, hi)),
            _MM_SHUFFLE(3, 1, 2, 0)));
        const __m128i h = _mm256_cvtps_ph(
            sums, _MM_FROUND_TO_NEAREST_INT | _MM_FROUND_NO_EXC);
        _mm256_storeu_ps(out + i, _mm256_cvtph_ps(h));
    }
    addPairsRoundedSpanScalar(in + 2 * i, out + i, pairs - i);
}

bool
cpuHasF16c()
{
    static const bool has = __builtin_cpu_supports("f16c") &&
        __builtin_cpu_supports("avx2");
    return has;
}

#endif // CXLPNM_FP16_X86_DISPATCH

} // namespace

bool
usingHardwareF16c()
{
#if CXLPNM_FP16_X86_DISPATCH
    return cpuHasF16c();
#else
    return false;
#endif
}

void
toFloatSpan(const Half *in, float *out, std::size_t n)
{
#if CXLPNM_FP16_X86_DISPATCH
    if (cpuHasF16c()) {
        toFloatSpanF16c(in, out, n);
        return;
    }
#endif
    toFloatSpanScalar(in, out, n);
}

void
fromFloatSpan(const float *in, Half *out, std::size_t n)
{
#if CXLPNM_FP16_X86_DISPATCH
    if (cpuHasF16c()) {
        fromFloatSpanF16c(in, out, n);
        return;
    }
#endif
    fromFloatSpanScalar(in, out, n);
}

void
mulToHalfSpan(const float *a, const float *b, Half *out, std::size_t n)
{
#if CXLPNM_FP16_X86_DISPATCH
    if (cpuHasF16c()) {
        mulToHalfSpanF16c(a, b, out, n);
        return;
    }
#endif
    mulToHalfSpanScalar(a, b, out, n);
}

void
addPairsToHalfSpan(const float *in, Half *out, std::size_t pairs)
{
#if CXLPNM_FP16_X86_DISPATCH
    if (cpuHasF16c()) {
        addPairsToHalfSpanF16c(in, out, pairs);
        return;
    }
#endif
    addPairsToHalfSpanScalar(in, out, pairs);
}

void
mulRoundedSpan(const float *a, const float *b, float *out, std::size_t n)
{
#if CXLPNM_FP16_X86_DISPATCH
    if (cpuHasF16c()) {
        mulRoundedSpanF16c(a, b, out, n);
        return;
    }
#endif
    mulRoundedSpanScalar(a, b, out, n);
}

void
addPairsRoundedSpan(const float *in, float *out, std::size_t pairs)
{
#if CXLPNM_FP16_X86_DISPATCH
    if (cpuHasF16c()) {
        addPairsRoundedSpanF16c(in, out, pairs);
        return;
    }
#endif
    addPairsRoundedSpanScalar(in, out, pairs);
}

} // namespace fp16

} // namespace cxlpnm
