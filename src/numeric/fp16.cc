#include "numeric/fp16.hh"

#include <bit>
#include <cmath>

namespace cxlpnm
{

namespace
{

constexpr std::uint32_t f32SignMask = 0x80000000u;
constexpr int f32ExpBits = 8;
constexpr int f32ManBits = 23;
constexpr int f16ManBits = 10;
constexpr int f32Bias = 127;
constexpr int f16Bias = 15;

} // namespace

std::uint16_t
Half::fromFloat(float f)
{
    const std::uint32_t u = std::bit_cast<std::uint32_t>(f);
    const std::uint16_t sign =
        static_cast<std::uint16_t>((u & f32SignMask) >> 16);
    const std::uint32_t exp = (u >> f32ManBits) & 0xffu;
    std::uint32_t man = u & ((1u << f32ManBits) - 1);

    if (exp == 0xffu) {
        // Inf or NaN. Preserve NaN-ness (make it quiet, keep payload top
        // bits) and the sign.
        if (man == 0)
            return sign | 0x7c00;
        std::uint16_t payload =
            static_cast<std::uint16_t>(man >> (f32ManBits - f16ManBits));
        return sign | 0x7c00 | 0x0200 | payload;
    }

    // Unbiased exponent of the float value.
    const int e = static_cast<int>(exp) - f32Bias;

    if (e > f16Bias) {
        // Overflows binary16 range (max exponent is 15) -> +-inf.
        // Values rounding up to 2^16 (>= 65520) also overflow; catch them
        // below via the rounding path when e == 15... but e > 15 is
        // always inf.
        return sign | 0x7c00;
    }

    if (e >= -14) {
        // Normal half range (possibly rounding up into infinity).
        std::uint16_t hexp = static_cast<std::uint16_t>(e + f16Bias);
        std::uint32_t keep = man >> (f32ManBits - f16ManBits);
        std::uint32_t rest = man & ((1u << (f32ManBits - f16ManBits)) - 1);
        std::uint32_t halfway = 1u << (f32ManBits - f16ManBits - 1);

        std::uint16_t h = static_cast<std::uint16_t>(
            (hexp << f16ManBits) | keep);
        // Round to nearest even: up if rest > halfway, or exactly halfway
        // and the kept LSB is odd. Mantissa carry naturally increments the
        // exponent, and 0x7bff + 1 == 0x7c00 == inf, as required.
        if (rest > halfway || (rest == halfway && (keep & 1)))
            ++h;
        return sign | h;
    }

    if (e >= -24) {
        // Subnormal half range: value = man' * 2^-24 with man' < 2^10.
        // Build the 24-bit significand (implicit leading 1) and shift it
        // right so the result's unit is 2^-24.
        std::uint32_t sig = man | (1u << f32ManBits); // 24-bit significand
        int shift = -e - 14 + (f32ManBits - f16ManBits); // in [14..24]
        std::uint32_t keep = sig >> shift;
        std::uint32_t rest = sig & ((1u << shift) - 1);
        std::uint32_t halfway = 1u << (shift - 1);

        std::uint16_t h = static_cast<std::uint16_t>(keep);
        if (rest > halfway || (rest == halfway && (keep & 1)))
            ++h; // may carry into the min-normal encoding: correct.
        return sign | h;
    }

    // Too small: rounds to zero (ties at 2^-25 round to even = zero).
    // Exactly 2^-25 has e == -25, man == 0 -> halfway, rounds to 0.
    if (e == -25 && man != 0)
        return sign | 0x0001; // just above halfway rounds up
    return sign;
}

float
Half::halfToFloat(std::uint16_t bits)
{
    const std::uint32_t sign = static_cast<std::uint32_t>(bits & 0x8000)
        << 16;
    const std::uint32_t exp = (bits >> f16ManBits) & 0x1fu;
    std::uint32_t man = bits & 0x3ffu;

    std::uint32_t out;
    if (exp == 0x1f) {
        // Inf/NaN.
        out = sign | 0x7f800000u | (man << (f32ManBits - f16ManBits));
    } else if (exp != 0) {
        // Normal.
        out = sign |
            ((exp - f16Bias + f32Bias) << f32ManBits) |
            (man << (f32ManBits - f16ManBits));
    } else if (man != 0) {
        // Subnormal: normalise into float's normal range. With the
        // leading set bit of man at position k, the value is
        // 2^(k-24) * (1 + lower/2^k); shift the k low bits up into the
        // top of the 10-bit fraction field and drop the leading 1.
        int shift = std::countl_zero(man) - (32 - 11); // == 10 - k
        man = (man << shift) & 0x3ffu;
        std::uint32_t e = static_cast<std::uint32_t>(
            -14 - shift + f32Bias); // == (k - 24) + 127
        out = sign | (e << f32ManBits) |
            (man << (f32ManBits - f16ManBits));
    } else {
        out = sign; // +-0
    }
    return std::bit_cast<float>(out);
}

bool
Half::isNan() const
{
    return (bits_ & 0x7c00) == 0x7c00 && (bits_ & 0x3ff) != 0;
}

bool
Half::isInf() const
{
    return (bits_ & 0x7fff) == 0x7c00;
}

bool
Half::isZero() const
{
    return (bits_ & 0x7fff) == 0;
}

bool
Half::isSubnormal() const
{
    return (bits_ & 0x7c00) == 0 && (bits_ & 0x3ff) != 0;
}

bool
Half::operator==(const Half &o) const
{
    if (isNan() || o.isNan())
        return false;
    if (isZero() && o.isZero())
        return true;
    return bits_ == o.bits_;
}

Half
fmaHalf(Half a, Half b, Half c)
{
    const double prod = static_cast<double>(a.toFloat()) *
        static_cast<double>(b.toFloat()) +
        static_cast<double>(c.toFloat());
    // double -> float -> half double rounding is innocuous here too:
    // 53 >= 2*24 + 2 fails, but the product of two 11-bit significands
    // plus an 11-bit addend is exactly representable in double, so the
    // only rounding happens at the final half conversion via float
    // (24 >= 2*11 + 2 holds).
    return Half(static_cast<float>(prod));
}

} // namespace cxlpnm
