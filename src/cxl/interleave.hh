/**
 * @file
 * Address interleaving study (§V-A, disadvantage D4).
 *
 * A host CPU interleaves physical addresses across channels/DIMMs/banks
 * for memory-level parallelism, which fragments any contiguous region a
 * PIM/PNM accelerator wants to own. A CXL module instead appears as one
 * NUMA node whose contiguous region the module's own controller
 * interleaves locally.
 *
 * AddressInterleaver is the bijective mapping; contiguousSpanVisible()
 * quantifies how much of a contiguous accelerator-visible region lands on
 * a single target under a given scheme - 1/ways for host interleave, 1.0
 * for a module-local scheme (the D4 resolution).
 */

#ifndef CXLPNM_CXL_INTERLEAVE_HH
#define CXLPNM_CXL_INTERLEAVE_HH

#include <cstdint>

#include "sim/logging.hh"
#include "sim/types.hh"

namespace cxlpnm
{
namespace cxl
{

/** Where an interleaved address lands. */
struct InterleaveTarget
{
    std::uint32_t way = 0;
    Addr offset = 0;

    bool operator==(const InterleaveTarget &) const = default;
};

/** Bijective block-interleave across @p ways at @p granule bytes. */
class AddressInterleaver
{
  public:
    AddressInterleaver(std::uint32_t ways, std::uint64_t granule)
        : ways_(ways), granule_(granule)
    {
        fatal_if(ways == 0, "interleaver needs at least one way");
        fatal_if(granule == 0, "interleave granule must be non-zero");
    }

    std::uint32_t ways() const { return ways_; }
    std::uint64_t granule() const { return granule_; }

    /** Global address -> (way, way-local offset). */
    InterleaveTarget
    map(Addr addr) const
    {
        const std::uint64_t block = addr / granule_;
        const std::uint64_t inner = addr % granule_;
        InterleaveTarget t;
        t.way = static_cast<std::uint32_t>(block % ways_);
        t.offset = (block / ways_) * granule_ + inner;
        return t;
    }

    /** Inverse of map(). */
    Addr
    unmap(const InterleaveTarget &t) const
    {
        panic_if(t.way >= ways_, "unmap way ", t.way, " out of range");
        const std::uint64_t block = t.offset / granule_;
        const std::uint64_t inner = t.offset % granule_;
        return (block * ways_ + t.way) * granule_ + inner;
    }

    /**
     * Fraction of a contiguous region of @p bytes that maps to the single
     * way its base address lands on. An accelerator private to one way
     * can only stream that fraction without crossing devices.
     */
    double
    contiguousSpanVisible(Addr base, std::uint64_t bytes) const
    {
        if (bytes == 0)
            return 0.0;
        const std::uint32_t home = map(base).way;
        std::uint64_t visible = 0;
        Addr a = base;
        std::uint64_t remaining = bytes;
        while (remaining > 0) {
            const std::uint64_t in_granule = granule_ - (a % granule_);
            const std::uint64_t take =
                remaining < in_granule ? remaining : in_granule;
            if (map(a).way == home)
                visible += take;
            a += take;
            remaining -= take;
        }
        return static_cast<double>(visible) / static_cast<double>(bytes);
    }

  private:
    std::uint32_t ways_;
    std::uint64_t granule_;
};

} // namespace cxl
} // namespace cxlpnm

#endif // CXLPNM_CXL_INTERLEAVE_HH
