#include "cxl/link.hh"

#include <utility>

#include "sim/logging.hh"
#include "sim/trace.hh"

namespace cxlpnm
{
namespace cxl
{

double
transferSeconds(const CxlLinkParams &p, std::uint64_t bytes)
{
    if (bytes == 0)
        return 0.0;
    return static_cast<double>(bytes) / p.usableBytesPerSec() +
        p.portLatencyNs * 1e-9;
}

LinkChannel::LinkChannel(EventQueue &eq, stats::StatGroup *parent,
                         std::string name, double bytes_per_sec,
                         Tick latency)
    : SimObject(eq, parent, std::move(name)),
      bytesPerSec_(bytes_per_sec),
      latency_(latency),
      dispatchEvent_(this->name() + ".dispatch", [this] { dispatch(); }),
      bytes_(this, "bytes", "bytes moved through this direction"),
      transfers_(this, "transfers", "transfers served"),
      crcErrors_(this, "crcErrors", "flit CRC errors detected"),
      replays_(this, "replays", "link-layer flit replays"),
      poisoned_(this, "poisoned", "transfers poisoned after replay")
{
    fatal_if(bytes_per_sec <= 0.0, "link bandwidth must be positive");
}

void
LinkChannel::transfer(std::uint64_t bytes,
                      std::function<void()> on_complete)
{
    transfer(bytes, std::move(on_complete), nullptr);
}

void
LinkChannel::transfer(std::uint64_t bytes,
                      std::function<void()> on_complete, bool *poison)
{
    panic_if(bytes == 0, "zero-byte link transfer");

    const Tick occupancy =
        secondsToTicks(static_cast<double>(bytes) / bytesPerSec_) + 1;
    const Tick start = std::max(now(), busyUntil_);
    busyUntil_ = start + occupancy;

    bytes_ += static_cast<double>(bytes);
    transfers_ += 1;

    // Link-layer retry: a corrupt flit is detected by CRC at the
    // receiver and replayed from the transmitter's retry buffer, each
    // attempt costing replayPenalty_ of extra pipe time. When the
    // replay budget runs out the flit is delivered poisoned.
    trace::Tracer *tr = eventQueue().tracer();
    if (tr != nullptr && traceTrack_ == trace::InvalidTrack)
        traceTrack_ = tr->track(fullName(), "cxl");

    if (faultSite_ != nullptr) {
        int attempts = 0;
        while (faultSite_->poll(now()) == fault::FaultKind::LinkCrc) {
            crcErrors_ += 1;
            if (attempts >= maxReplays_) {
                poisoned_ += 1;
                if (poison != nullptr)
                    *poison = true;
                if (tr != nullptr)
                    tr->instant(traceTrack_, "crc_poisoned", busyUntil_);
                break;
            }
            ++attempts;
            replays_ += 1;
            if (tr != nullptr)
                tr->instant(traceTrack_, "crc_replay", busyUntil_);
            busyUntil_ += replayPenalty_;
        }
    }

    // The span covers bus occupancy plus any replay stall.
    if (tr != nullptr)
        tr->complete(traceTrack_, "xfer", start, busyUntil_);

    if (on_complete) {
        const Tick done = busyUntil_ + latency_;
        panic_if(!pending_.empty() && done < pending_.back().first,
                 "non-monotone delivery tick on ", fullName());
        const bool was_idle = pending_.empty();
        pending_.emplace_back(done, std::move(on_complete));
        if (was_idle)
            eventQueue().reschedule(dispatchEvent_, done);
    }
}

void
LinkChannel::dispatch()
{
    while (!pending_.empty() && pending_.front().first <= now()) {
        auto cb = std::move(pending_.front().second);
        pending_.pop_front();
        cb();
    }
    if (!pending_.empty() && !dispatchEvent_.scheduled())
        eventQueue().reschedule(dispatchEvent_, pending_.front().first);
}

CxlLink::CxlLink(EventQueue &eq, stats::StatGroup *parent, std::string name,
                 const CxlLinkParams &params)
    : SimObject(eq, parent, std::move(name)),
      params_(params),
      down_(eq, this, "down", params.usableBytesPerSec(), portLatency()),
      up_(eq, this, "up", params.usableBytesPerSec(), portLatency())
{}

void
CxlLink::attachFaultInjector(fault::FaultInjector *inj)
{
    const Tick penalty =
        static_cast<Tick>(params_.crcReplayLatencyNs * tickPerNs);
    if (inj == nullptr) {
        down_.attachFaults(nullptr, 0, 0);
        up_.attachFaults(nullptr, 0, 0);
        return;
    }
    down_.attachFaults(inj->site(down_.fullName() + ".crc"), penalty,
                       params_.maxCrcReplays);
    up_.attachFaults(inj->site(up_.fullName() + ".crc"), penalty,
                     params_.maxCrcReplays);
}

} // namespace cxl
} // namespace cxlpnm
