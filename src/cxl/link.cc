#include "cxl/link.hh"

#include <utility>

#include "sim/logging.hh"

namespace cxlpnm
{
namespace cxl
{

LinkChannel::LinkChannel(EventQueue &eq, stats::StatGroup *parent,
                         std::string name, double bytes_per_sec,
                         Tick latency)
    : SimObject(eq, parent, std::move(name)),
      bytesPerSec_(bytes_per_sec),
      latency_(latency),
      dispatchEvent_(this->name() + ".dispatch", [this] { dispatch(); }),
      bytes_(this, "bytes", "bytes moved through this direction"),
      transfers_(this, "transfers", "transfers served")
{
    fatal_if(bytes_per_sec <= 0.0, "link bandwidth must be positive");
}

void
LinkChannel::transfer(std::uint64_t bytes,
                      std::function<void()> on_complete)
{
    panic_if(bytes == 0, "zero-byte link transfer");

    const Tick occupancy =
        secondsToTicks(static_cast<double>(bytes) / bytesPerSec_) + 1;
    const Tick start = std::max(now(), busyUntil_);
    busyUntil_ = start + occupancy;

    bytes_ += static_cast<double>(bytes);
    transfers_ += 1;

    if (on_complete) {
        pending_.emplace(busyUntil_ + latency_, std::move(on_complete));
        eventQueue().reschedule(dispatchEvent_, pending_.begin()->first);
    }
}

void
LinkChannel::dispatch()
{
    while (!pending_.empty() && pending_.begin()->first <= now()) {
        auto cb = std::move(pending_.begin()->second);
        pending_.erase(pending_.begin());
        cb();
    }
    if (!pending_.empty())
        eventQueue().reschedule(dispatchEvent_, pending_.begin()->first);
}

CxlLink::CxlLink(EventQueue &eq, stats::StatGroup *parent, std::string name,
                 const CxlLinkParams &params)
    : SimObject(eq, parent, std::move(name)),
      params_(params),
      down_(eq, this, "down", params.usableBytesPerSec(), portLatency()),
      up_(eq, this, "up", params.usableBytesPerSec(), portLatency())
{}

} // namespace cxl
} // namespace cxlpnm
