#include "cxl/arbiter.hh"

#include <utility>

#include "sim/logging.hh"
#include "sim/trace.hh"

namespace cxlpnm
{
namespace cxl
{

HostPnmArbiter::HostPnmArbiter(EventQueue &eq, stats::StatGroup *parent,
                               std::string name,
                               dram::MultiChannelMemory &mem, Params params)
    : SimObject(eq, parent, std::move(name)),
      mem_(mem),
      params_(params),
      grantLatency_(static_cast<Tick>(params.grantLatencyNs * tickPerNs)),
      grantName_(this->name() + ".grant"),
      releaseEvent_(this->name() + ".release", [this] { releaseHost(); }),
      hostRequests_(this, "hostRequests", "requests issued by the host"),
      pnmRequests_(this, "pnmRequests",
                   "requests issued by the accelerator"),
      hostBlocked_(this, "hostBlocked",
                   "host requests blocked behind a PNM task"),
      hostWait_(this, "hostWaitNs", "host arbitration wait (ns)")
{}

void
HostPnmArbiter::access(Requester who, dram::MemoryRequest req)
{
    if (who == Requester::Host) {
        hostRequests_ += 1;
        if (params_.policy == Policy::PollingHandshake && taskActive_) {
            // DIMM-PNM: the channel is owned by the accelerator; the
            // host's request sits until the post-task poll discovers the
            // release flag.
            hostBlocked_ += 1;
            if (auto *tr = eventQueue().tracer()) {
                if (traceTrack_ == trace::InvalidTrack)
                    traceTrack_ = tr->track(fullName(), "cxl");
                tr->instant(traceTrack_, "host_blocked", now());
            }
            blockedHost_.push_back(std::move(req));
            blockedSince_.push_back(now());
            return;
        }
        issue(std::move(req), now(), who);
    } else {
        pnmRequests_ += 1;
        issue(std::move(req), now(), who);
    }
}

void
HostPnmArbiter::issue(dram::MemoryRequest req, Tick queued_at,
                      Requester who)
{
    if (who == Requester::Host) {
        hostWait_.sample(
            static_cast<double>(now() + grantLatency_ - queued_at) /
            tickPerNs);
    }
    if (auto *tr = eventQueue().tracer()) {
        if (traceTrack_ == trace::InvalidTrack)
            traceTrack_ = tr->track(fullName(), "cxl");
        // The span covers queueing (host requests blocked behind a PNM
        // task start at their arrival tick) plus the grant pipeline.
        tr->complete(traceTrack_,
                     who == Requester::Host ? "grant.host" : "grant.pnm",
                     queued_at, now() + grantLatency_);
    }
    // Model the grant pipeline by deferring the DRAM issue. Completion
    // callbacks pass through unchanged.
    if (grantLatency_ == 0) {
        mem_.access(std::move(req));
        return;
    }
    // The name is copied from the cached string: a recycled one-shot's
    // string assignment reuses its existing capacity, so the only
    // steady-state allocation left per grant is the closure capture.
    eventQueue().scheduleOneShot(
        grantName_, now() + grantLatency_,
        [this, r = std::move(req)]() mutable {
            mem_.access(std::move(r));
        });
}

void
HostPnmArbiter::beginPnmTask()
{
    panic_if(taskActive_, "nested PNM task");
    taskActive_ = true;
    taskSince_ = now();
}

void
HostPnmArbiter::endPnmTask()
{
    panic_if(!taskActive_, "endPnmTask without begin");
    taskActive_ = false;
    if (auto *tr = eventQueue().tracer()) {
        if (traceTrack_ == trace::InvalidTrack)
            traceTrack_ = tr->track(fullName(), "cxl");
        tr->complete(traceTrack_, "pnm_task", taskSince_, now());
    }
    if (params_.policy == Policy::PollingHandshake &&
        !blockedHost_.empty()) {
        // The host discovers the release at its next poll boundary: on
        // average half an interval, modelled as a fixed half-period.
        const Tick poll = static_cast<Tick>(
            params_.pollIntervalUs * tickPerUs / 2);
        scheduleIn(releaseEvent_, poll);
    }
}

void
HostPnmArbiter::releaseHost()
{
    while (!blockedHost_.empty()) {
        dram::MemoryRequest req = std::move(blockedHost_.front());
        blockedHost_.pop_front();
        Tick since = blockedSince_.front();
        blockedSince_.pop_front();
        issue(std::move(req), since, Requester::Host);
    }
}

} // namespace cxl
} // namespace cxlpnm
