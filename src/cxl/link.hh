/**
 * @file
 * CXL link model on a PCIe Gen5 physical layer.
 *
 * A CxlLink is a full-duplex pair of bandwidth servers (one per
 * direction) plus fixed per-hop latencies for the PHY, link and
 * transaction layers. CXL.mem carries 64-byte flits whose header overhead
 * is folded into the link efficiency.
 */

#ifndef CXLPNM_CXL_LINK_HH
#define CXLPNM_CXL_LINK_HH

#include <cstdint>
#include <deque>
#include <functional>
#include <string>
#include <utility>

#include "sim/fault.hh"
#include "sim/sim_object.hh"
#include "sim/trace.hh"

namespace cxlpnm
{
namespace cxl
{

/** Transfer direction through a link. */
enum class Direction { Downstream, Upstream };

/** Electrical and protocol parameters of one CXL link. */
struct CxlLinkParams
{
    /** Raw signalling rate per lane, bytes/s (Gen5: 32 GT/s ~= 4 GB/s). */
    double laneBytesPerSec = 4.0e9;
    int lanes = 16;
    /**
     * Usable fraction after 128b/130b coding, flit headers and CRC
     * (CXL 2.0 x16 sustains ~85% of raw).
     */
    double efficiency = 0.85;
    /** One-way port-to-port latency (PHY+link+transaction layers), ns. */
    double portLatencyNs = 25.0;

    /**
     * Link-layer retry (flit replay) penalty per attempt: the CRC
     * failure is detected at the receiver, a retry request crosses
     * back, and the transmitter replays from its retry buffer.
     */
    double crcReplayLatencyNs = 100.0;
    /** Replay attempts before the flit is poisoned upstream. */
    int maxCrcReplays = 3;

    double
    peakBytesPerSec() const
    {
        return laneBytesPerSec * lanes;
    }

    double
    usableBytesPerSec() const
    {
        return peakBytesPerSec() * efficiency;
    }
};

/**
 * Analytic one-way cost of moving @p bytes through a link with
 * parameters @p p: serialization at the usable bandwidth plus the
 * one-way port latency. The seconds-clock counterpart of LinkChannel
 * for layers (serve/tier) that price CXL transfers without an event
 * queue; a zero-byte transfer costs nothing.
 */
double transferSeconds(const CxlLinkParams &p, std::uint64_t bytes);

/**
 * Byte/transfer accounting for analytic link users, per direction.
 * LinkChannel keeps its own stats; this struct gives the serve tier
 * the same ledger without instantiating an event-driven channel.
 */
struct TransferAccount
{
    std::uint64_t downBytes = 0;
    std::uint64_t upBytes = 0;
    std::uint64_t downTransfers = 0;
    std::uint64_t upTransfers = 0;

    void
    note(Direction d, std::uint64_t bytes)
    {
        if (d == Direction::Downstream) {
            downBytes += bytes;
            ++downTransfers;
        } else {
            upBytes += bytes;
            ++upTransfers;
        }
    }

    std::uint64_t totalBytes() const { return downBytes + upBytes; }
    std::uint64_t totalTransfers() const
    {
        return downTransfers + upTransfers;
    }
};

/** One direction of a link: FIFO bandwidth server with fixed latency. */
class LinkChannel : public SimObject
{
  public:
    LinkChannel(EventQueue &eq, stats::StatGroup *parent, std::string name,
                double bytes_per_sec, Tick latency);

    /** Move @p bytes; callback fires when the tail arrives. */
    void transfer(std::uint64_t bytes, std::function<void()> on_complete);

    /**
     * As above, with a poison sink: when an injected flit CRC error
     * exhausts the link-layer replay budget, @p poison is set to true
     * before the completion fires (CXL poison propagation upstream).
     * Successful replays only cost latency.
     */
    void transfer(std::uint64_t bytes, std::function<void()> on_complete,
                  bool *poison);

    /**
     * Attach fault injection: @p site is polled once per transfer plus
     * once per replay attempt; kind LinkCrc marks the flit corrupt.
     */
    void
    attachFaults(fault::FaultSite *site, Tick replay_penalty,
                 int max_replays)
    {
        faultSite_ = site;
        replayPenalty_ = replay_penalty;
        maxReplays_ = max_replays;
    }

    std::uint64_t crcErrors() const
    {
        return static_cast<std::uint64_t>(crcErrors_.value());
    }
    std::uint64_t replays() const
    {
        return static_cast<std::uint64_t>(replays_.value());
    }
    std::uint64_t poisonedTransfers() const
    {
        return static_cast<std::uint64_t>(poisoned_.value());
    }

    double bandwidth() const { return bytesPerSec_; }
    Tick latency() const { return latency_; }
    std::uint64_t bytesMoved() const
    {
        return static_cast<std::uint64_t>(bytes_.value());
    }
    /** Tick at which all queued traffic will have left the pipe. */
    Tick drainTick() const { return busyUntil_; }

  private:
    void dispatch();

    double bytesPerSec_;
    Tick latency_;
    Tick busyUntil_ = 0;
    /**
     * Completion callbacks in delivery order. busyUntil_ only grows
     * (CRC replays extend it further) and the port latency is fixed,
     * so delivery ticks are non-decreasing in enqueue order (asserted
     * in transfer()): a deque replaces the old tick-keyed multimap and
     * the dispatch event is armed only while a transfer is in flight.
     */
    std::deque<std::pair<Tick, std::function<void()>>> pending_;
    Event dispatchEvent_;

    /** Fault injection (null = fault-free, the default). */
    fault::FaultSite *faultSite_ = nullptr;
    Tick replayPenalty_ = 0;
    int maxReplays_ = 0;

    /** Lazily registered transfer/replay trace track. */
    trace::TrackId traceTrack_ = trace::InvalidTrack;

    stats::Scalar bytes_;
    stats::Scalar transfers_;
    stats::Scalar crcErrors_;
    stats::Scalar replays_;
    stats::Scalar poisoned_;
};

/** A full-duplex CXL link between the host and one device. */
class CxlLink : public SimObject
{
  public:
    CxlLink(EventQueue &eq, stats::StatGroup *parent, std::string name,
            const CxlLinkParams &params);

    LinkChannel &channel(Direction d)
    {
        return d == Direction::Downstream ? down_ : up_;
    }

    /**
     * Attach fault injection to both directions; sites are
     * "<link>.down.crc" and "<link>.up.crc". Null detaches.
     */
    void attachFaultInjector(fault::FaultInjector *inj);

    const CxlLinkParams &params() const { return params_; }

    /** One-way latency in ticks. */
    Tick
    portLatency() const
    {
        return static_cast<Tick>(params_.portLatencyNs * tickPerNs);
    }

  private:
    CxlLinkParams params_;
    LinkChannel down_;
    LinkChannel up_;
};

} // namespace cxl
} // namespace cxlpnm

#endif // CXLPNM_CXL_LINK_HH
