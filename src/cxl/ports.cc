#include "cxl/ports.hh"

#include <utility>

#include "sim/logging.hh"

namespace cxlpnm
{
namespace cxl
{

CxlMemPort::CxlMemPort(EventQueue &eq, stats::StatGroup *parent,
                       std::string name, CxlLink &link,
                       HostPnmArbiter &arbiter)
    : SimObject(eq, parent, std::move(name)),
      link_(link),
      arbiter_(arbiter),
      reads_(this, "reads", "host CXL.mem reads"),
      writes_(this, "writes", "host CXL.mem writes"),
      latency_(this, "latencyNs", "host access latency (ns)")
{}

void
CxlMemPort::hostRead(Addr addr, std::uint64_t bytes,
                     std::function<void()> on_complete, bool *poison)
{
    reads_ += 1;
    const Tick issued = now();

    // Request flit downstream -> arbiter+DRAM -> data upstream. The
    // poison sink is threaded through both the DRAM ECC stack and the
    // upstream data transfer.
    link_.channel(Direction::Downstream).transfer(flitBytes, [=, this] {
        dram::MemoryRequest req;
        req.addr = addr;
        req.bytes = bytes;
        req.isRead = true;
        req.poison = poison;
        req.onComplete = [=, this] {
            link_.channel(Direction::Upstream).transfer(
                bytes,
                [=, this] {
                    latency_.sample(
                        static_cast<double>(now() - issued) / tickPerNs);
                    if (on_complete)
                        on_complete();
                },
                poison);
        };
        arbiter_.access(Requester::Host, std::move(req));
    });
}

void
CxlMemPort::hostWrite(Addr addr, std::uint64_t bytes,
                      std::function<void()> on_complete, bool *poison)
{
    writes_ += 1;
    const Tick issued = now();

    // Data flows downstream; a header-sized ack returns upstream.
    link_.channel(Direction::Downstream).transfer(
        bytes,
        [=, this] {
            dram::MemoryRequest req;
            req.addr = addr;
            req.bytes = bytes;
            req.isRead = false;
            req.poison = poison;
            req.onComplete = [=, this] {
                link_.channel(Direction::Upstream).transfer(flitBytes,
                                                            [=, this] {
                    latency_.sample(
                        static_cast<double>(now() - issued) / tickPerNs);
                    if (on_complete)
                        on_complete();
                });
            };
            arbiter_.access(Requester::Host, std::move(req));
        },
        poison);
}

CxlIoPort::CxlIoPort(EventQueue &eq, stats::StatGroup *parent,
                     std::string name, CxlLink &link)
    : SimObject(eq, parent, std::move(name)),
      link_(link),
      regReads_(this, "regReads", "CXL.io register reads"),
      regWrites_(this, "regWrites", "CXL.io register writes"),
      interrupts_(this, "interrupts", "MSI-X interrupts delivered")
{}

void
CxlIoPort::setHandlers(ReadHandler read, WriteHandler write)
{
    readHandler_ = std::move(read);
    writeHandler_ = std::move(write);
}

void
CxlIoPort::writeRegister(Addr addr, std::uint64_t value,
                         std::function<void()> on_complete)
{
    panic_if(!writeHandler_, "CXL.io write with no device handler");
    regWrites_ += 1;
    const Tick lat = static_cast<Tick>(mmioLatencyNs * tickPerNs);
    eventQueue().scheduleOneShot(
        name() + ".mmioWr", now() + lat,
        [this, addr, value, cb = std::move(on_complete)] {
            writeHandler_(addr, value);
            if (cb) {
                const Tick back =
                    static_cast<Tick>(mmioLatencyNs * tickPerNs);
                eventQueue().scheduleOneShot(name() + ".mmioWrAck",
                                             now() + back, cb);
            }
        });
}

void
CxlIoPort::readRegister(Addr addr,
                        std::function<void(std::uint64_t)> on_complete)
{
    panic_if(!readHandler_, "CXL.io read with no device handler");
    panic_if(!on_complete, "CXL.io read needs a completion");
    regReads_ += 1;
    const Tick lat = static_cast<Tick>(mmioLatencyNs * tickPerNs);
    eventQueue().scheduleOneShot(
        name() + ".mmioRd", now() + lat,
        [this, addr, cb = std::move(on_complete)] {
            const std::uint64_t v = readHandler_(addr);
            const Tick back =
                static_cast<Tick>(mmioLatencyNs * tickPerNs);
            eventQueue().scheduleOneShot(name() + ".mmioRdData",
                                         now() + back,
                                         [cb, v] { cb(v); });
        });
}

void
CxlIoPort::setBulkHandler(BulkHandler handler)
{
    bulkHandler_ = std::move(handler);
}

void
CxlIoPort::writeBulk(Addr addr, std::vector<std::uint8_t> bytes,
                     std::function<void()> on_complete)
{
    panic_if(!bulkHandler_, "CXL.io bulk write with no device handler");
    panic_if(bytes.empty(), "empty bulk write");
    regWrites_ += 1;
    const Tick lat = static_cast<Tick>(mmioLatencyNs * tickPerNs) +
        secondsToTicks(static_cast<double>(bytes.size()) / wcBytesPerSec);
    eventQueue().scheduleOneShot(
        name() + ".mmioBulk", now() + lat,
        [this, addr, b = std::move(bytes),
         cb = std::move(on_complete)] {
            bulkHandler_(addr, b);
            if (cb)
                cb();
        });
}

void
CxlIoPort::raiseInterrupt(std::function<void()> on_delivered)
{
    panic_if(!on_delivered, "interrupt with no ISR");
    interrupts_ += 1;
    const Tick lat = static_cast<Tick>(interruptLatencyNs * tickPerNs);
    eventQueue().scheduleOneShot(name() + ".msix", now() + lat,
                                 std::move(on_delivered));
}

} // namespace cxl
} // namespace cxlpnm
