/**
 * @file
 * Arbitration of concurrent memory requests from the host CPU and the PNM
 * accelerator (§V-A, disadvantage D3).
 *
 * Two policies are modelled:
 *
 *  - Hardware: the CXL-PNM arbiter. CXL tolerates variable latency
 *    between the CXL IP and the memory controllers, so requests from both
 *    sides flow to the DRAM immediately (per-request grant latency only)
 *    and contend at the channels. This is the paper's design.
 *
 *  - PollingHandshake: the DIMM-PNM (AxDIMM) scheme. While the
 *    accelerator owns the DIMM, every host request is blocked until the
 *    current accelerator *task* completes AND the host's next poll of the
 *    designated flag address discovers the release. Used by the
 *    ablation_arbiter bench to quantify D3.
 */

#ifndef CXLPNM_CXL_ARBITER_HH
#define CXLPNM_CXL_ARBITER_HH

#include <deque>
#include <string>

#include "dram/module.hh"
#include "sim/sim_object.hh"
#include "sim/trace.hh"

namespace cxlpnm
{
namespace cxl
{

/** Who issued a request. */
enum class Requester { Host, Pnm };

/** Host/PNM arbitration in front of the module's DRAM. */
class HostPnmArbiter : public SimObject
{
  public:
    enum class Policy { Hardware, PollingHandshake };

    struct Params
    {
        Policy policy = Policy::Hardware;
        /** Grant pipeline latency for the hardware arbiter. */
        double grantLatencyNs = 5.0;
        /** Host polling period in the handshake scheme. */
        double pollIntervalUs = 5.0;
    };

    HostPnmArbiter(EventQueue &eq, stats::StatGroup *parent,
                   std::string name, dram::MultiChannelMemory &mem,
                   Params params);

    /** Issue a request on behalf of @p who. */
    void access(Requester who, dram::MemoryRequest req);

    /**
     * Accelerator task bracketing. In the polling-handshake policy the
     * host is locked out between begin and end; the hardware policy
     * ignores these (that is the point of D3's fix).
     */
    void beginPnmTask();
    void endPnmTask();

    bool pnmTaskActive() const { return taskActive_; }

    double
    meanHostWaitNs() const
    {
        return hostWait_.mean();
    }

  private:
    void issue(dram::MemoryRequest req, Tick queued_at, Requester who);
    void releaseHost();

    dram::MultiChannelMemory &mem_;
    Params params_;
    Tick grantLatency_;
    /** Cached "<name>.grant" so per-grant scheduling allocates nothing. */
    std::string grantName_;

    bool taskActive_ = false;
    Tick taskSince_ = 0;
    std::deque<dram::MemoryRequest> blockedHost_;
    std::deque<Tick> blockedSince_;
    Event releaseEvent_;

    /** Lazily registered grant/ownership trace track. */
    trace::TrackId traceTrack_ = trace::InvalidTrack;

    stats::Scalar hostRequests_;
    stats::Scalar pnmRequests_;
    stats::Scalar hostBlocked_;
    stats::Average hostWait_;
};

} // namespace cxl
} // namespace cxlpnm

#endif // CXLPNM_CXL_ARBITER_HH
