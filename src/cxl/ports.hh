/**
 * @file
 * The two protocol ports a CXL-PNM device exposes (§V-B):
 *
 *  - CxlMemPort: CXL.mem. The host reaches the module's DRAM with
 *    load/store semantics, like a remote NUMA node. Requests traverse the
 *    link downstream, arbitrate against the accelerator, access DRAM, and
 *    data returns upstream.
 *
 *  - CxlIoPort: CXL.io. The side-band used to configure, program and
 *    control the accelerator (register file access, doorbells) and to
 *    deliver MSI-X interrupts back to the host.
 */

#ifndef CXLPNM_CXL_PORTS_HH
#define CXLPNM_CXL_PORTS_HH

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "cxl/arbiter.hh"
#include "cxl/link.hh"
#include "sim/sim_object.hh"

namespace cxlpnm
{
namespace cxl
{

/** Host-side load/store access to module memory over CXL.mem. */
class CxlMemPort : public SimObject
{
  public:
    CxlMemPort(EventQueue &eq, stats::StatGroup *parent, std::string name,
               CxlLink &link, HostPnmArbiter &arbiter);

    /**
     * Host read: callback fires when data has arrived at the host.
     * @p poison (optional) is set before the callback when the data
     * carries an uncorrectable-error poison from the DRAM ECC stack or
     * from the upstream link after replay exhaustion.
     */
    void hostRead(Addr addr, std::uint64_t bytes,
                  std::function<void()> on_complete,
                  bool *poison = nullptr);

    /** Host write: callback fires when the device acknowledges. */
    void hostWrite(Addr addr, std::uint64_t bytes,
                   std::function<void()> on_complete,
                   bool *poison = nullptr);

    /** Mean end-to-end host access latency observed so far, ns. */
    double meanLatencyNs() const { return latency_.mean(); }

  private:
    /** CXL.mem request flit size (header-only request/ack). */
    static constexpr std::uint64_t flitBytes = 64;

    CxlLink &link_;
    HostPnmArbiter &arbiter_;

    stats::Scalar reads_;
    stats::Scalar writes_;
    stats::Average latency_;
};

/** Device register space reachable through CXL.io. */
class CxlIoPort : public SimObject
{
  public:
    using ReadHandler = std::function<std::uint64_t(Addr)>;
    using WriteHandler = std::function<void(Addr, std::uint64_t)>;

    CxlIoPort(EventQueue &eq, stats::StatGroup *parent, std::string name,
              CxlLink &link);

    /** Install the device-side register backend (the control unit). */
    void setHandlers(ReadHandler read, WriteHandler write);

    /** Host MMIO write (config/doorbell); ack via callback. */
    void writeRegister(Addr addr, std::uint64_t value,
                       std::function<void()> on_complete);

    /** Host MMIO read; value delivered to the callback. */
    void readRegister(Addr addr,
                      std::function<void(std::uint64_t)> on_complete);

    using BulkHandler =
        std::function<void(Addr, const std::vector<std::uint8_t> &)>;

    /** Install the device-side sink for bulk buffer writes. */
    void setBulkHandler(BulkHandler handler);

    /**
     * Write-combined posted burst into a device buffer (instruction
     * buffer programming). One MMIO latency plus bytes at the
     * write-combining rate; no per-word acknowledgement.
     */
    void writeBulk(Addr addr, std::vector<std::uint8_t> bytes,
                   std::function<void()> on_complete);

    /** Write-combining throughput for bulk MMIO bursts, bytes/s. */
    static constexpr double wcBytesPerSec = 1.0e9;

    /**
     * Device-to-host MSI-X interrupt. @p on_delivered runs when the host
     * would enter the ISR.
     */
    void raiseInterrupt(std::function<void()> on_delivered);

    /** MMIO one-way latency (config-space accesses are slow), ns. */
    static constexpr double mmioLatencyNs = 200.0;
    /** MSI-X delivery + ISR entry latency, ns. */
    static constexpr double interruptLatencyNs = 1500.0;

  private:
    CxlLink &link_;
    ReadHandler readHandler_;
    WriteHandler writeHandler_;
    BulkHandler bulkHandler_;

    stats::Scalar regReads_;
    stats::Scalar regWrites_;
    stats::Scalar interrupts_;
};

} // namespace cxl
} // namespace cxlpnm

#endif // CXLPNM_CXL_PORTS_HH
