file(REMOVE_RECURSE
  "CMakeFiles/text_generation_service.dir/text_generation_service.cpp.o"
  "CMakeFiles/text_generation_service.dir/text_generation_service.cpp.o.d"
  "text_generation_service"
  "text_generation_service.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/text_generation_service.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
