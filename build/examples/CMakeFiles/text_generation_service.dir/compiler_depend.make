# Empty compiler generated dependencies file for text_generation_service.
# This may be replaced when dependencies are built.
