# Empty compiler generated dependencies file for parallelism_explorer.
# This may be replaced when dependencies are built.
