file(REMOVE_RECURSE
  "CMakeFiles/parallelism_explorer.dir/parallelism_explorer.cpp.o"
  "CMakeFiles/parallelism_explorer.dir/parallelism_explorer.cpp.o.d"
  "parallelism_explorer"
  "parallelism_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parallelism_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
