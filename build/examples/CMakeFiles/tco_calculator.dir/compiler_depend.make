# Empty compiler generated dependencies file for tco_calculator.
# This may be replaced when dependencies are built.
