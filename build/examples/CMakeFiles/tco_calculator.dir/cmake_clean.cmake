file(REMOVE_RECURSE
  "CMakeFiles/tco_calculator.dir/tco_calculator.cpp.o"
  "CMakeFiles/tco_calculator.dir/tco_calculator.cpp.o.d"
  "tco_calculator"
  "tco_calculator.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tco_calculator.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
