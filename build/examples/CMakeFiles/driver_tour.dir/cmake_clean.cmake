file(REMOVE_RECURSE
  "CMakeFiles/driver_tour.dir/driver_tour.cpp.o"
  "CMakeFiles/driver_tour.dir/driver_tour.cpp.o.d"
  "driver_tour"
  "driver_tour.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/driver_tour.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
