# Empty compiler generated dependencies file for driver_tour.
# This may be replaced when dependencies are built.
