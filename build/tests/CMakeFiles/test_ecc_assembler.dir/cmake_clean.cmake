file(REMOVE_RECURSE
  "CMakeFiles/test_ecc_assembler.dir/test_ecc_assembler.cc.o"
  "CMakeFiles/test_ecc_assembler.dir/test_ecc_assembler.cc.o.d"
  "test_ecc_assembler"
  "test_ecc_assembler.pdb"
  "test_ecc_assembler[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ecc_assembler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
