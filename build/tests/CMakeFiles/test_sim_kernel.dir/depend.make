# Empty dependencies file for test_sim_kernel.
# This may be replaced when dependencies are built.
