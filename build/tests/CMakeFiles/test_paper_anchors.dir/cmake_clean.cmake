file(REMOVE_RECURSE
  "CMakeFiles/test_paper_anchors.dir/test_paper_anchors.cc.o"
  "CMakeFiles/test_paper_anchors.dir/test_paper_anchors.cc.o.d"
  "test_paper_anchors"
  "test_paper_anchors.pdb"
  "test_paper_anchors[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_paper_anchors.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
