# Empty compiler generated dependencies file for test_paper_anchors.
# This may be replaced when dependencies are built.
