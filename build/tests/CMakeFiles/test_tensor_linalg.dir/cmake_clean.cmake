file(REMOVE_RECURSE
  "CMakeFiles/test_tensor_linalg.dir/test_tensor_linalg.cc.o"
  "CMakeFiles/test_tensor_linalg.dir/test_tensor_linalg.cc.o.d"
  "test_tensor_linalg"
  "test_tensor_linalg.pdb"
  "test_tensor_linalg[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_tensor_linalg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
