# Empty dependencies file for test_tensor_linalg.
# This may be replaced when dependencies are built.
