# Empty dependencies file for test_fp16.
# This may be replaced when dependencies are built.
