file(REMOVE_RECURSE
  "CMakeFiles/test_fp16.dir/test_fp16.cc.o"
  "CMakeFiles/test_fp16.dir/test_fp16.cc.o.d"
  "test_fp16"
  "test_fp16.pdb"
  "test_fp16[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fp16.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
