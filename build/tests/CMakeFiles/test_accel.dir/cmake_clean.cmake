file(REMOVE_RECURSE
  "CMakeFiles/test_accel.dir/test_accel.cc.o"
  "CMakeFiles/test_accel.dir/test_accel.cc.o.d"
  "test_accel"
  "test_accel.pdb"
  "test_accel[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_accel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
