file(REMOVE_RECURSE
  "CMakeFiles/test_llm.dir/test_llm.cc.o"
  "CMakeFiles/test_llm.dir/test_llm.cc.o.d"
  "test_llm"
  "test_llm.pdb"
  "test_llm[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_llm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
