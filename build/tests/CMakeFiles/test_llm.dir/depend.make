# Empty dependencies file for test_llm.
# This may be replaced when dependencies are built.
