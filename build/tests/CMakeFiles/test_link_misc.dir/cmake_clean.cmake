file(REMOVE_RECURSE
  "CMakeFiles/test_link_misc.dir/test_link_misc.cc.o"
  "CMakeFiles/test_link_misc.dir/test_link_misc.cc.o.d"
  "test_link_misc"
  "test_link_misc.pdb"
  "test_link_misc[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_link_misc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
