# Empty dependencies file for test_link_misc.
# This may be replaced when dependencies are built.
