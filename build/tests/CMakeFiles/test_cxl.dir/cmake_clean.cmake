file(REMOVE_RECURSE
  "CMakeFiles/test_cxl.dir/test_cxl.cc.o"
  "CMakeFiles/test_cxl.dir/test_cxl.cc.o.d"
  "test_cxl"
  "test_cxl.pdb"
  "test_cxl[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cxl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
