# Empty dependencies file for test_cxl.
# This may be replaced when dependencies are built.
