# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_sim_kernel[1]_include.cmake")
include("/root/repo/build/tests/test_fp16[1]_include.cmake")
include("/root/repo/build/tests/test_tensor_linalg[1]_include.cmake")
include("/root/repo/build/tests/test_dram[1]_include.cmake")
include("/root/repo/build/tests/test_cxl[1]_include.cmake")
include("/root/repo/build/tests/test_isa[1]_include.cmake")
include("/root/repo/build/tests/test_accel[1]_include.cmake")
include("/root/repo/build/tests/test_llm[1]_include.cmake")
include("/root/repo/build/tests/test_runtime[1]_include.cmake")
include("/root/repo/build/tests/test_gpu[1]_include.cmake")
include("/root/repo/build/tests/test_core[1]_include.cmake")
include("/root/repo/build/tests/test_ecc_assembler[1]_include.cmake")
include("/root/repo/build/tests/test_paper_anchors[1]_include.cmake")
include("/root/repo/build/tests/test_properties[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
include("/root/repo/build/tests/test_edge_cases[1]_include.cmake")
include("/root/repo/build/tests/test_link_misc[1]_include.cmake")
