
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/llm/model_config.cc" "src/llm/CMakeFiles/cxlpnm_llm.dir/model_config.cc.o" "gcc" "src/llm/CMakeFiles/cxlpnm_llm.dir/model_config.cc.o.d"
  "/root/repo/src/llm/reference_model.cc" "src/llm/CMakeFiles/cxlpnm_llm.dir/reference_model.cc.o" "gcc" "src/llm/CMakeFiles/cxlpnm_llm.dir/reference_model.cc.o.d"
  "/root/repo/src/llm/synthetic.cc" "src/llm/CMakeFiles/cxlpnm_llm.dir/synthetic.cc.o" "gcc" "src/llm/CMakeFiles/cxlpnm_llm.dir/synthetic.cc.o.d"
  "/root/repo/src/llm/workload.cc" "src/llm/CMakeFiles/cxlpnm_llm.dir/workload.cc.o" "gcc" "src/llm/CMakeFiles/cxlpnm_llm.dir/workload.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/numeric/CMakeFiles/cxlpnm_numeric.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/cxlpnm_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
