file(REMOVE_RECURSE
  "CMakeFiles/cxlpnm_llm.dir/model_config.cc.o"
  "CMakeFiles/cxlpnm_llm.dir/model_config.cc.o.d"
  "CMakeFiles/cxlpnm_llm.dir/reference_model.cc.o"
  "CMakeFiles/cxlpnm_llm.dir/reference_model.cc.o.d"
  "CMakeFiles/cxlpnm_llm.dir/synthetic.cc.o"
  "CMakeFiles/cxlpnm_llm.dir/synthetic.cc.o.d"
  "CMakeFiles/cxlpnm_llm.dir/workload.cc.o"
  "CMakeFiles/cxlpnm_llm.dir/workload.cc.o.d"
  "libcxlpnm_llm.a"
  "libcxlpnm_llm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cxlpnm_llm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
