# Empty dependencies file for cxlpnm_llm.
# This may be replaced when dependencies are built.
