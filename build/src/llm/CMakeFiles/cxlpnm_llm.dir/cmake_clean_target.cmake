file(REMOVE_RECURSE
  "libcxlpnm_llm.a"
)
