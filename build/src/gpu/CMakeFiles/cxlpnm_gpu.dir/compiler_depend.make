# Empty compiler generated dependencies file for cxlpnm_gpu.
# This may be replaced when dependencies are built.
