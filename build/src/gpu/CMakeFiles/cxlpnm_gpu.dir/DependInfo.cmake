
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/gpu/gpu_spec.cc" "src/gpu/CMakeFiles/cxlpnm_gpu.dir/gpu_spec.cc.o" "gcc" "src/gpu/CMakeFiles/cxlpnm_gpu.dir/gpu_spec.cc.o.d"
  "/root/repo/src/gpu/inference.cc" "src/gpu/CMakeFiles/cxlpnm_gpu.dir/inference.cc.o" "gcc" "src/gpu/CMakeFiles/cxlpnm_gpu.dir/inference.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/llm/CMakeFiles/cxlpnm_llm.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/cxlpnm_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/numeric/CMakeFiles/cxlpnm_numeric.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
