file(REMOVE_RECURSE
  "CMakeFiles/cxlpnm_gpu.dir/gpu_spec.cc.o"
  "CMakeFiles/cxlpnm_gpu.dir/gpu_spec.cc.o.d"
  "CMakeFiles/cxlpnm_gpu.dir/inference.cc.o"
  "CMakeFiles/cxlpnm_gpu.dir/inference.cc.o.d"
  "libcxlpnm_gpu.a"
  "libcxlpnm_gpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cxlpnm_gpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
