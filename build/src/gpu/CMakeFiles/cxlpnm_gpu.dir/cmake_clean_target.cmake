file(REMOVE_RECURSE
  "libcxlpnm_gpu.a"
)
