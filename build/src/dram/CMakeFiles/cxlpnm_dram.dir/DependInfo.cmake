
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dram/channel.cc" "src/dram/CMakeFiles/cxlpnm_dram.dir/channel.cc.o" "gcc" "src/dram/CMakeFiles/cxlpnm_dram.dir/channel.cc.o.d"
  "/root/repo/src/dram/dram_spec.cc" "src/dram/CMakeFiles/cxlpnm_dram.dir/dram_spec.cc.o" "gcc" "src/dram/CMakeFiles/cxlpnm_dram.dir/dram_spec.cc.o.d"
  "/root/repo/src/dram/module.cc" "src/dram/CMakeFiles/cxlpnm_dram.dir/module.cc.o" "gcc" "src/dram/CMakeFiles/cxlpnm_dram.dir/module.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/cxlpnm_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
