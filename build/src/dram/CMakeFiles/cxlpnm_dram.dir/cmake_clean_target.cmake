file(REMOVE_RECURSE
  "libcxlpnm_dram.a"
)
