# Empty dependencies file for cxlpnm_dram.
# This may be replaced when dependencies are built.
