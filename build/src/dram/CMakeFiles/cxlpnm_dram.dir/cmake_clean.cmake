file(REMOVE_RECURSE
  "CMakeFiles/cxlpnm_dram.dir/channel.cc.o"
  "CMakeFiles/cxlpnm_dram.dir/channel.cc.o.d"
  "CMakeFiles/cxlpnm_dram.dir/dram_spec.cc.o"
  "CMakeFiles/cxlpnm_dram.dir/dram_spec.cc.o.d"
  "CMakeFiles/cxlpnm_dram.dir/module.cc.o"
  "CMakeFiles/cxlpnm_dram.dir/module.cc.o.d"
  "libcxlpnm_dram.a"
  "libcxlpnm_dram.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cxlpnm_dram.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
