file(REMOVE_RECURSE
  "libcxlpnm_core.a"
)
