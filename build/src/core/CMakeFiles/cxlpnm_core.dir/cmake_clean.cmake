file(REMOVE_RECURSE
  "CMakeFiles/cxlpnm_core.dir/inference_engine.cc.o"
  "CMakeFiles/cxlpnm_core.dir/inference_engine.cc.o.d"
  "CMakeFiles/cxlpnm_core.dir/platform.cc.o"
  "CMakeFiles/cxlpnm_core.dir/platform.cc.o.d"
  "CMakeFiles/cxlpnm_core.dir/tco.cc.o"
  "CMakeFiles/cxlpnm_core.dir/tco.cc.o.d"
  "libcxlpnm_core.a"
  "libcxlpnm_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cxlpnm_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
