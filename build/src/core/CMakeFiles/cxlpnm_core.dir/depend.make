# Empty dependencies file for cxlpnm_core.
# This may be replaced when dependencies are built.
