# Empty dependencies file for cxlpnm_runtime.
# This may be replaced when dependencies are built.
