file(REMOVE_RECURSE
  "libcxlpnm_runtime.a"
)
