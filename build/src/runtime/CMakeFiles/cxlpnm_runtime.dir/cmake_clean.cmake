file(REMOVE_RECURSE
  "CMakeFiles/cxlpnm_runtime.dir/allocator.cc.o"
  "CMakeFiles/cxlpnm_runtime.dir/allocator.cc.o.d"
  "CMakeFiles/cxlpnm_runtime.dir/driver.cc.o"
  "CMakeFiles/cxlpnm_runtime.dir/driver.cc.o.d"
  "CMakeFiles/cxlpnm_runtime.dir/pnm_library.cc.o"
  "CMakeFiles/cxlpnm_runtime.dir/pnm_library.cc.o.d"
  "libcxlpnm_runtime.a"
  "libcxlpnm_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cxlpnm_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
