# Empty compiler generated dependencies file for cxlpnm_cxl.
# This may be replaced when dependencies are built.
