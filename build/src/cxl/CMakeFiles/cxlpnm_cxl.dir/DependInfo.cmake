
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cxl/arbiter.cc" "src/cxl/CMakeFiles/cxlpnm_cxl.dir/arbiter.cc.o" "gcc" "src/cxl/CMakeFiles/cxlpnm_cxl.dir/arbiter.cc.o.d"
  "/root/repo/src/cxl/link.cc" "src/cxl/CMakeFiles/cxlpnm_cxl.dir/link.cc.o" "gcc" "src/cxl/CMakeFiles/cxlpnm_cxl.dir/link.cc.o.d"
  "/root/repo/src/cxl/ports.cc" "src/cxl/CMakeFiles/cxlpnm_cxl.dir/ports.cc.o" "gcc" "src/cxl/CMakeFiles/cxlpnm_cxl.dir/ports.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/dram/CMakeFiles/cxlpnm_dram.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/cxlpnm_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
