file(REMOVE_RECURSE
  "libcxlpnm_cxl.a"
)
