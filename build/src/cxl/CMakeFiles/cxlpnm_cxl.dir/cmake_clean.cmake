file(REMOVE_RECURSE
  "CMakeFiles/cxlpnm_cxl.dir/arbiter.cc.o"
  "CMakeFiles/cxlpnm_cxl.dir/arbiter.cc.o.d"
  "CMakeFiles/cxlpnm_cxl.dir/link.cc.o"
  "CMakeFiles/cxlpnm_cxl.dir/link.cc.o.d"
  "CMakeFiles/cxlpnm_cxl.dir/ports.cc.o"
  "CMakeFiles/cxlpnm_cxl.dir/ports.cc.o.d"
  "libcxlpnm_cxl.a"
  "libcxlpnm_cxl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cxlpnm_cxl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
