# Empty dependencies file for cxlpnm_accel.
# This may be replaced when dependencies are built.
