
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/accel/accelerator.cc" "src/accel/CMakeFiles/cxlpnm_accel.dir/accelerator.cc.o" "gcc" "src/accel/CMakeFiles/cxlpnm_accel.dir/accelerator.cc.o.d"
  "/root/repo/src/accel/functional.cc" "src/accel/CMakeFiles/cxlpnm_accel.dir/functional.cc.o" "gcc" "src/accel/CMakeFiles/cxlpnm_accel.dir/functional.cc.o.d"
  "/root/repo/src/accel/register_file.cc" "src/accel/CMakeFiles/cxlpnm_accel.dir/register_file.cc.o" "gcc" "src/accel/CMakeFiles/cxlpnm_accel.dir/register_file.cc.o.d"
  "/root/repo/src/accel/timing.cc" "src/accel/CMakeFiles/cxlpnm_accel.dir/timing.cc.o" "gcc" "src/accel/CMakeFiles/cxlpnm_accel.dir/timing.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/isa/CMakeFiles/cxlpnm_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/cxl/CMakeFiles/cxlpnm_cxl.dir/DependInfo.cmake"
  "/root/repo/build/src/numeric/CMakeFiles/cxlpnm_numeric.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/cxlpnm_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/dram/CMakeFiles/cxlpnm_dram.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
