file(REMOVE_RECURSE
  "CMakeFiles/cxlpnm_accel.dir/accelerator.cc.o"
  "CMakeFiles/cxlpnm_accel.dir/accelerator.cc.o.d"
  "CMakeFiles/cxlpnm_accel.dir/functional.cc.o"
  "CMakeFiles/cxlpnm_accel.dir/functional.cc.o.d"
  "CMakeFiles/cxlpnm_accel.dir/register_file.cc.o"
  "CMakeFiles/cxlpnm_accel.dir/register_file.cc.o.d"
  "CMakeFiles/cxlpnm_accel.dir/timing.cc.o"
  "CMakeFiles/cxlpnm_accel.dir/timing.cc.o.d"
  "libcxlpnm_accel.a"
  "libcxlpnm_accel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cxlpnm_accel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
