file(REMOVE_RECURSE
  "libcxlpnm_accel.a"
)
