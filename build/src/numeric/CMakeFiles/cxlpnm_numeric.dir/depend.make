# Empty dependencies file for cxlpnm_numeric.
# This may be replaced when dependencies are built.
