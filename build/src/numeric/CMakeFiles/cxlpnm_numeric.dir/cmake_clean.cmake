file(REMOVE_RECURSE
  "CMakeFiles/cxlpnm_numeric.dir/fp16.cc.o"
  "CMakeFiles/cxlpnm_numeric.dir/fp16.cc.o.d"
  "CMakeFiles/cxlpnm_numeric.dir/linalg.cc.o"
  "CMakeFiles/cxlpnm_numeric.dir/linalg.cc.o.d"
  "libcxlpnm_numeric.a"
  "libcxlpnm_numeric.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cxlpnm_numeric.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
