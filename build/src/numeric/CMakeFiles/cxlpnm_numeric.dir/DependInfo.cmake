
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/numeric/fp16.cc" "src/numeric/CMakeFiles/cxlpnm_numeric.dir/fp16.cc.o" "gcc" "src/numeric/CMakeFiles/cxlpnm_numeric.dir/fp16.cc.o.d"
  "/root/repo/src/numeric/linalg.cc" "src/numeric/CMakeFiles/cxlpnm_numeric.dir/linalg.cc.o" "gcc" "src/numeric/CMakeFiles/cxlpnm_numeric.dir/linalg.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/cxlpnm_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
