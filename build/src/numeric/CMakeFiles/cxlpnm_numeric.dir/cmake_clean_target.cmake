file(REMOVE_RECURSE
  "libcxlpnm_numeric.a"
)
