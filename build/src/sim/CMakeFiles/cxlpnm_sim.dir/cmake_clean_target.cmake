file(REMOVE_RECURSE
  "libcxlpnm_sim.a"
)
