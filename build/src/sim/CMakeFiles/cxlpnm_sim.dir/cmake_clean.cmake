file(REMOVE_RECURSE
  "CMakeFiles/cxlpnm_sim.dir/config.cc.o"
  "CMakeFiles/cxlpnm_sim.dir/config.cc.o.d"
  "CMakeFiles/cxlpnm_sim.dir/event_queue.cc.o"
  "CMakeFiles/cxlpnm_sim.dir/event_queue.cc.o.d"
  "CMakeFiles/cxlpnm_sim.dir/logging.cc.o"
  "CMakeFiles/cxlpnm_sim.dir/logging.cc.o.d"
  "CMakeFiles/cxlpnm_sim.dir/stats.cc.o"
  "CMakeFiles/cxlpnm_sim.dir/stats.cc.o.d"
  "libcxlpnm_sim.a"
  "libcxlpnm_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cxlpnm_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
