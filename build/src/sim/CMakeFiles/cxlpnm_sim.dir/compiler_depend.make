# Empty compiler generated dependencies file for cxlpnm_sim.
# This may be replaced when dependencies are built.
