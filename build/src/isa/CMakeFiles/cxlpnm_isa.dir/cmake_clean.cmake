file(REMOVE_RECURSE
  "CMakeFiles/cxlpnm_isa.dir/assembler.cc.o"
  "CMakeFiles/cxlpnm_isa.dir/assembler.cc.o.d"
  "CMakeFiles/cxlpnm_isa.dir/isa.cc.o"
  "CMakeFiles/cxlpnm_isa.dir/isa.cc.o.d"
  "libcxlpnm_isa.a"
  "libcxlpnm_isa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cxlpnm_isa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
