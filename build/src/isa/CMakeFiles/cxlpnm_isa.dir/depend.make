# Empty dependencies file for cxlpnm_isa.
# This may be replaced when dependencies are built.
