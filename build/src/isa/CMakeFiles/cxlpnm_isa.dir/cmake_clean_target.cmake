file(REMOVE_RECURSE
  "libcxlpnm_isa.a"
)
