# Empty dependencies file for fig03_memcpy_breakdown.
# This may be replaced when dependencies are built.
