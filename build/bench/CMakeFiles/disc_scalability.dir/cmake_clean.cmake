file(REMOVE_RECURSE
  "CMakeFiles/disc_scalability.dir/disc_scalability.cc.o"
  "CMakeFiles/disc_scalability.dir/disc_scalability.cc.o.d"
  "disc_scalability"
  "disc_scalability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/disc_scalability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
