# Empty dependencies file for disc_scalability.
# This may be replaced when dependencies are built.
