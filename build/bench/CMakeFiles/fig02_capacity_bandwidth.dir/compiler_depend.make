# Empty compiler generated dependencies file for fig02_capacity_bandwidth.
# This may be replaced when dependencies are built.
