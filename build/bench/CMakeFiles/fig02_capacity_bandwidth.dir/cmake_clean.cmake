file(REMOVE_RECURSE
  "CMakeFiles/fig02_capacity_bandwidth.dir/fig02_capacity_bandwidth.cc.o"
  "CMakeFiles/fig02_capacity_bandwidth.dir/fig02_capacity_bandwidth.cc.o.d"
  "fig02_capacity_bandwidth"
  "fig02_capacity_bandwidth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig02_capacity_bandwidth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
