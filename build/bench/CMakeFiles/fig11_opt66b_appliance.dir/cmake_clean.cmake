file(REMOVE_RECURSE
  "CMakeFiles/fig11_opt66b_appliance.dir/fig11_opt66b_appliance.cc.o"
  "CMakeFiles/fig11_opt66b_appliance.dir/fig11_opt66b_appliance.cc.o.d"
  "fig11_opt66b_appliance"
  "fig11_opt66b_appliance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_opt66b_appliance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
