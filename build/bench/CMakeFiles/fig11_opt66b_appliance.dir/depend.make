# Empty dependencies file for fig11_opt66b_appliance.
# This may be replaced when dependencies are built.
