file(REMOVE_RECURSE
  "CMakeFiles/table2_platform.dir/table2_platform.cc.o"
  "CMakeFiles/table2_platform.dir/table2_platform.cc.o.d"
  "table2_platform"
  "table2_platform.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_platform.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
