# Empty dependencies file for table2_platform.
# This may be replaced when dependencies are built.
