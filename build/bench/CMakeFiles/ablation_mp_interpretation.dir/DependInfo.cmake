
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/ablation_mp_interpretation.cc" "bench/CMakeFiles/ablation_mp_interpretation.dir/ablation_mp_interpretation.cc.o" "gcc" "bench/CMakeFiles/ablation_mp_interpretation.dir/ablation_mp_interpretation.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/cxlpnm_core.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/cxlpnm_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/gpu/CMakeFiles/cxlpnm_gpu.dir/DependInfo.cmake"
  "/root/repo/build/src/llm/CMakeFiles/cxlpnm_llm.dir/DependInfo.cmake"
  "/root/repo/build/src/accel/CMakeFiles/cxlpnm_accel.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/cxlpnm_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/cxl/CMakeFiles/cxlpnm_cxl.dir/DependInfo.cmake"
  "/root/repo/build/src/dram/CMakeFiles/cxlpnm_dram.dir/DependInfo.cmake"
  "/root/repo/build/src/numeric/CMakeFiles/cxlpnm_numeric.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/cxlpnm_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
