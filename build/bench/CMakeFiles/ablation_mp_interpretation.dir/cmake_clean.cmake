file(REMOVE_RECURSE
  "CMakeFiles/ablation_mp_interpretation.dir/ablation_mp_interpretation.cc.o"
  "CMakeFiles/ablation_mp_interpretation.dir/ablation_mp_interpretation.cc.o.d"
  "ablation_mp_interpretation"
  "ablation_mp_interpretation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_mp_interpretation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
