# Empty dependencies file for ablation_mp_interpretation.
# This may be replaced when dependencies are built.
