# Empty dependencies file for fig10_opt13b_device.
# This may be replaced when dependencies are built.
