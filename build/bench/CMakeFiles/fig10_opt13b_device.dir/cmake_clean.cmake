file(REMOVE_RECURSE
  "CMakeFiles/fig10_opt13b_device.dir/fig10_opt13b_device.cc.o"
  "CMakeFiles/fig10_opt13b_device.dir/fig10_opt13b_device.cc.o.d"
  "fig10_opt13b_device"
  "fig10_opt13b_device.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_opt13b_device.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
