file(REMOVE_RECURSE
  "CMakeFiles/ablation_arbiter.dir/ablation_arbiter.cc.o"
  "CMakeFiles/ablation_arbiter.dir/ablation_arbiter.cc.o.d"
  "ablation_arbiter"
  "ablation_arbiter.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_arbiter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
