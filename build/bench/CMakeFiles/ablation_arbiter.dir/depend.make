# Empty dependencies file for ablation_arbiter.
# This may be replaced when dependencies are built.
