# Empty dependencies file for fig04_util_breakdown.
# This may be replaced when dependencies are built.
