file(REMOVE_RECURSE
  "CMakeFiles/ablation_tile_dim.dir/ablation_tile_dim.cc.o"
  "CMakeFiles/ablation_tile_dim.dir/ablation_tile_dim.cc.o.d"
  "ablation_tile_dim"
  "ablation_tile_dim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_tile_dim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
