# Empty dependencies file for ablation_tile_dim.
# This may be replaced when dependencies are built.
