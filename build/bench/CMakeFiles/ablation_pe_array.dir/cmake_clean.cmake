file(REMOVE_RECURSE
  "CMakeFiles/ablation_pe_array.dir/ablation_pe_array.cc.o"
  "CMakeFiles/ablation_pe_array.dir/ablation_pe_array.cc.o.d"
  "ablation_pe_array"
  "ablation_pe_array.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_pe_array.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
