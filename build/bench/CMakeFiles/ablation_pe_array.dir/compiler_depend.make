# Empty compiler generated dependencies file for ablation_pe_array.
# This may be replaced when dependencies are built.
