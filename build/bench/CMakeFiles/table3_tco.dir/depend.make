# Empty dependencies file for table3_tco.
# This may be replaced when dependencies are built.
