file(REMOVE_RECURSE
  "CMakeFiles/table3_tco.dir/table3_tco.cc.o"
  "CMakeFiles/table3_tco.dir/table3_tco.cc.o.d"
  "table3_tco"
  "table3_tco.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_tco.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
