file(REMOVE_RECURSE
  "CMakeFiles/micro_simkernel.dir/micro_simkernel.cc.o"
  "CMakeFiles/micro_simkernel.dir/micro_simkernel.cc.o.d"
  "micro_simkernel"
  "micro_simkernel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_simkernel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
