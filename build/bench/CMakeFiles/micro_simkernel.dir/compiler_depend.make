# Empty compiler generated dependencies file for micro_simkernel.
# This may be replaced when dependencies are built.
