file(REMOVE_RECURSE
  "CMakeFiles/ablation_interleave.dir/ablation_interleave.cc.o"
  "CMakeFiles/ablation_interleave.dir/ablation_interleave.cc.o.d"
  "ablation_interleave"
  "ablation_interleave.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_interleave.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
