# Empty compiler generated dependencies file for ablation_interleave.
# This may be replaced when dependencies are built.
