# Empty dependencies file for table1_dram_comparison.
# This may be replaced when dependencies are built.
