file(REMOVE_RECURSE
  "CMakeFiles/table1_dram_comparison.dir/table1_dram_comparison.cc.o"
  "CMakeFiles/table1_dram_comparison.dir/table1_dram_comparison.cc.o.d"
  "table1_dram_comparison"
  "table1_dram_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_dram_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
