/**
 * @file
 * A low-level tour of the CXL-PNM software stack (§VI / Fig. 9): build
 * acceleration code for individual layer functions by hand, program the
 * instruction buffer over CXL.io, ring the doorbell, and take the
 * completion as an MSI-X interrupt - then again with status-register
 * polling. This is the path the CXL-PNM Python library automates.
 */

#include <cstdio>

#include "core/platform.hh"
#include "numeric/linalg.hh"

using namespace cxlpnm;

int
main()
{
    EventQueue eq;
    stats::StatGroup root(nullptr, "");
    core::PnmPlatformConfig pcfg;
    pcfg.functionalBytes = 8ull * MiB;
    core::PnmDevice dev(eq, &root, "pnm0", pcfg);
    auto &drv = dev.driver();
    auto &rf = dev.accel().registerFile();
    auto *fmem = dev.functionalMemory();

    // 1. Place a weight matrix in device memory (the host writes it
    //    directly through CXL.mem - no explicit copies, §II-A).
    const std::uint32_t m = 8, n = 16;
    HalfTensor w(m, n);
    w.fillGaussian(7, 0.5);
    fmem->writeTensor(0x10000, w);
    std::printf("step 1: wrote %zux%zu FP16 weights at 0x10000 via "
                "CXL.mem\n",
                w.rows(), w.cols());

    // 2. Hand-build acceleration code: y = GELU(W . x).
    auto x = rf.alloc(1, n, "x");
    auto y = rf.alloc(1, m, "y");
    rf.tensor(x).fillGaussian(8, 0.5);

    isa::Program prog;
    {
        isa::Instruction mv;
        mv.op = isa::Opcode::MpuMv;
        mv.flags = isa::FlagMemOperand;
        mv.dst = y;
        mv.src0 = x;
        mv.m = m;
        mv.n = n;
        mv.memAddr = 0x10000;
        prog.append(mv);

        isa::Instruction gelu;
        gelu.op = isa::Opcode::VpuGelu;
        gelu.dst = gelu.src0 = y;
        gelu.m = 1;
        gelu.n = m;
        prog.append(gelu);
    }
    std::printf("step 2: assembled %zu instructions:\n%s",
                prog.size(), prog.toString().c_str());

    // 3. Program the instruction buffer and set a control register.
    bool ready = false;
    drv.setParam(0, 1, nullptr); // e.g. "one layer"
    drv.loadProgram(prog, [&] { ready = true; });
    eq.run();
    std::printf("step 3: instruction buffer programmed over CXL.io "
                "(%s)\n", ready ? "acked" : "pending?");

    // 4. Doorbell + MSI-X interrupt completion.
    bool done = false;
    drv.execute([&] { done = true; });
    eq.run();
    std::printf("step 4: doorbell -> accelerator -> MSI-X ISR "
                "(%llu interrupt taken)\n",
                static_cast<unsigned long long>(
                    drv.interruptsTaken()));

    // Check the math.
    auto ref = rf.tensor(x).cast<double>();
    double worst = 0.0;
    for (std::uint32_t i = 0; i < m; ++i) {
        double acc = 0.0;
        for (std::uint32_t j = 0; j < n; ++j)
            acc += static_cast<double>(w.at(i, j)) * ref.at(0, j);
        const double expect = linalg::gelu(acc);
        worst = std::max(worst,
                         std::abs(expect -
                                  rf.tensor(y).at(0, i).toFloat()));
    }
    std::printf("        result max |err| vs double reference: %.4f\n",
                worst);

    // 5. The same flow with polling instead of interrupts (§VI: both
    //    completion mechanisms are supported).
    drv.setCompletionMode(runtime::Completion::Polling);
    done = false;
    drv.execute([&] { done = true; });
    eq.run();
    std::printf("step 5: polling completion worked too (%llu status "
                "polls issued)\n",
                static_cast<unsigned long long>(drv.pollsIssued()));
    return done && worst < 0.05 ? 0 : 1;
}
