/**
 * @file
 * Quickstart: bring up one simulated CXL-PNM device, load a small
 * OPT-like model with synthetic weights, and generate text greedily -
 * the whole §VI flow (allocate, load, program, doorbell, ISR) in ~50
 * lines of user code. The device's FP16 output is cross-checked against
 * the double-precision reference model.
 *
 *   ./quickstart [seed=42] [tokens=8]
 */

#include <cstdio>
#include <string>
#include <vector>

#include "core/platform.hh"
#include "llm/reference_model.hh"
#include "sim/config.hh"

using namespace cxlpnm;

int
main(int argc, char **argv)
{
    auto cfg = Config::fromArgs({argv + 1, argv + argc});
    const std::uint64_t seed = cfg.getInt("seed", 42);
    const std::size_t n_tokens = cfg.getInt("tokens", 8);

    // One CXL-PNM device with a functional memory image so the
    // accelerator computes real FP16 values.
    EventQueue eq;
    stats::StatGroup root(nullptr, "");
    core::PnmPlatformConfig pcfg;
    pcfg.functionalBytes = 24ull * MiB;
    core::PnmDevice device(eq, &root, "pnm0", pcfg);

    // Load the model: allocates weights/KV in device memory, writes
    // the synthetic checkpoint, preloads biases into the RF.
    const auto model = llm::ModelConfig::tiny();
    bool loaded = false;
    device.library().loadModel(model, seed, [&] { loaded = true; });
    eq.run();
    std::printf("loaded %s: %llu parameters, %llu bytes of device "
                "memory in use\n",
                model.name.c_str(),
                static_cast<unsigned long long>(model.paramCount()),
                static_cast<unsigned long long>(
                    device.library().allocator().usedBytes()));

    // Generate.
    const std::vector<std::uint32_t> prompt{3, 141, 59, 26, 5};
    std::vector<std::uint32_t> tokens;
    device.library().generate(prompt, n_tokens,
                              [&](std::vector<std::uint32_t> t) {
                                  tokens = std::move(t);
                              });
    eq.run();

    std::printf("prompt : ");
    for (auto t : prompt)
        std::printf("%u ", t);
    std::printf("\ndevice : ");
    for (auto t : tokens)
        std::printf("%u ", t);
    std::printf("\n");

    // Golden check against the double-precision reference.
    llm::ReferenceModel ref(model, seed);
    const auto expect = ref.greedyGenerate(prompt, n_tokens);
    std::printf("golden : ");
    for (auto t : expect)
        std::printf("%u ", t);
    std::printf("\n%s\n", tokens == expect
                              ? "MATCH: FP16 device output equals the "
                                "double-precision reference"
                              : "MISMATCH (unexpected)");

    std::printf("\nsimulated time: %.3f ms; accelerator ran %llu "
                "programs, %llu MACs,\nstreamed %.2f MB from the "
                "LPDDR5X module\n",
                ticksToSeconds(eq.now()) * 1e3,
                static_cast<unsigned long long>(
                    device.driver().launches()),
                static_cast<unsigned long long>(
                    device.accel().totalMacs()),
                device.accel().totalDmaBytes() / 1e6);
    return tokens == expect ? 0 : 1;
}
