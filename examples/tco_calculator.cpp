/**
 * @file
 * Standalone Table III-style TCO calculator. Feed it your own appliance
 * parameters (device count/price, power, throughput, electricity rate,
 * grid carbon intensity) and it prints the daily economics.
 *
 *   ./tco_calculator devices=8 price=7000 power=642 tps=65.4 \
 *                    usd_per_kwh=0.1035 co2_per_kwh=0.05694
 */

#include <cstdio>

#include "core/tco.hh"
#include "sim/config.hh"

using namespace cxlpnm;

int
main(int argc, char **argv)
{
    auto cfg = Config::fromArgs({argv + 1, argv + argc});

    core::TcoInputs in;
    in.name = cfg.getString("name", "appliance");
    in.devices = static_cast<int>(cfg.getInt("devices", 8));
    in.devicePriceUsd = cfg.getDouble("price", 7000.0);
    in.appliancePowerW = cfg.getDouble("power", 642.0);
    in.throughputTokensPerSec = cfg.getDouble("tps", 65.4);
    in.electricityUsdPerKwh = cfg.getDouble("usd_per_kwh", 0.1035);
    in.co2KgPerKwh = cfg.getDouble("co2_per_kwh", 0.05694);

    const auto r = core::computeTco(in);
    std::printf("TCO for '%s' (%d devices @ $%.0f)\n", in.name.c_str(),
                in.devices, in.devicePriceUsd);
    std::printf("  hardware cost      $%.0f\n", r.hardwareCostUsd);
    std::printf("  throughput          %.2f M tokens/day\n",
                r.tokensPerDayM);
    std::printf("  energy              %.1f kWh/day\n", r.kwhPerDay);
    std::printf("  electricity         $%.2f/day (at $%.4f/kWh)\n",
                r.usdPerDay, in.electricityUsdPerKwh);
    std::printf("  CO2                 %.2f kg/day\n", r.co2KgPerDay);
    std::printf("  cost efficiency     %.2f M tokens/$\n",
                r.tokensPerUsdM);
    std::printf("  CO2 efficiency      %.2f M tokens/kg\n",
                r.tokensPerKgM);

    // Payback horizon against a reference appliance, if given.
    if (cfg.has("ref_price") && cfg.has("ref_power")) {
        const double ref_hw =
            cfg.getDouble("ref_price", 0) * in.devices;
        const double ref_kwh =
            cfg.getDouble("ref_power", 0) * 24.0 / 1000.0;
        const double saved_per_day =
            (ref_kwh - r.kwhPerDay) * in.electricityUsdPerKwh;
        if (saved_per_day > 0 && r.hardwareCostUsd < ref_hw) {
            std::printf("\nvs reference: $%.0f cheaper hardware AND "
                        "$%.2f/day lower electricity\n",
                        ref_hw - r.hardwareCostUsd, saved_per_day);
        } else if (saved_per_day > 0) {
            std::printf("\nvs reference: hardware premium $%.0f paid "
                        "back in %.0f days of energy savings\n",
                        r.hardwareCostUsd - ref_hw,
                        (r.hardwareCostUsd - ref_hw) / saved_per_day);
        }
    }
    return 0;
}
