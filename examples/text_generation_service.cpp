/**
 * @file
 * A datacenter text-generation service (the paper's §I motivating
 * workload): size a deployment for a target model and compare one
 * CXL-PNM device against one A100, end to end - latency per request,
 * sustained throughput, energy per token, and daily operating cost.
 *
 *   ./text_generation_service [model=opt-13b] [in=64] [out=1024]
 */

#include <cstdio>
#include <string>

#include "core/inference_engine.hh"
#include "core/tco.hh"
#include "gpu/inference.hh"
#include "sim/config.hh"

using namespace cxlpnm;

int
main(int argc, char **argv)
{
    auto cfg = Config::fromArgs({argv + 1, argv + argc});
    const auto model =
        llm::ModelConfig::byName(cfg.getString("model", "opt-13b"));
    llm::InferenceRequest req;
    req.inputTokens = cfg.getInt("in", 64);
    req.outputTokens = cfg.getInt("out", 1024);

    std::printf("service workload: %s, %llu input / %llu output "
                "tokens per request\n",
                model.name.c_str(),
                static_cast<unsigned long long>(req.inputTokens),
                static_cast<unsigned long long>(req.outputTokens));
    std::printf("model footprint: %.1f GB FP16 + %.2f GB KV cache at "
                "full context\n\n",
                model.weightBytes() / GB,
                model.kvCacheBytes(req.inputTokens + req.outputTokens) /
                    GB);

    // --- GPU device ---
    const auto gspec = gpu::GpuSpec::a100_40g();
    const auto g = gpu::runGpuInference(model, req, gspec,
                                        gpu::GpuCalibration{}, 1);
    const bool offloads = !gpu::modelFits(model, req, gspec, 1);
    std::printf("A100-40G%s:\n", offloads ? " (offloading weights!)"
                                          : "");
    std::printf("  request latency   %8.2f s\n", g.totalSeconds);
    std::printf("  throughput        %8.2f tokens/s\n",
                g.throughputTokensPerSec());
    std::printf("  avg power         %8.1f W\n", g.avgPowerW);
    std::printf("  energy/token      %8.2f J\n",
                g.energyJoules / req.outputTokens);

    // --- CXL-PNM device ---
    core::PnmPlatformConfig pcfg;
    pcfg.channelGrouping = 8;
    const auto p = runPnmSingleDevice(model, req, pcfg);
    std::printf("CXL-PNM:\n");
    std::printf("  request latency   %8.2f s\n", p.totalSeconds);
    std::printf("  throughput        %8.2f tokens/s\n",
                p.throughputTokensPerSec());
    std::printf("  avg power         %8.1f W\n", p.avgPowerW);
    std::printf("  energy/token      %8.2f J\n",
                p.energyJoules / req.outputTokens);

    std::printf("\nCXL-PNM vs GPU: %.2fx throughput, %.2fx energy "
                "efficiency\n",
                p.throughputTokensPerSec() / g.throughputTokensPerSec(),
                p.tokensPerJoule() / g.tokensPerJoule());

    // Daily economics per device (Table III methodology).
    for (int is_pnm = 0; is_pnm < 2; ++is_pnm) {
        core::TcoInputs in;
        in.name = is_pnm ? "CXL-PNM" : "A100";
        in.devices = 1;
        in.devicePriceUsd = is_pnm ? 7000.0 : gspec.priceUsd;
        in.appliancePowerW = is_pnm ? p.avgPowerW : g.avgPowerW;
        in.throughputTokensPerSec = is_pnm
            ? p.throughputTokensPerSec()
            : g.throughputTokensPerSec();
        const auto r = core::computeTco(in);
        std::printf("%s/day: %.2f M tokens, %.2f kWh, $%.2f, %.2f kg "
                    "CO2\n",
                    in.name.c_str(), r.tokensPerDayM, r.kwhPerDay,
                    r.usdPerDay, r.co2KgPerDay);
    }
    return 0;
}
