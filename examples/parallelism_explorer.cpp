/**
 * @file
 * Explore the model/data-parallelism trade-off of §VIII-A on an
 * N-device CXL-PNM appliance: every legal MP x DP factorisation is
 * simulated and reported so an operator can pick a point on the
 * latency/throughput/energy frontier.
 *
 *   ./parallelism_explorer [model=opt-66b] [devices=8] [out=128]
 */

#include <cstdio>
#include <string>
#include <vector>

#include "core/inference_engine.hh"
#include "sim/config.hh"

using namespace cxlpnm;

int
main(int argc, char **argv)
{
    auto cfg = Config::fromArgs({argv + 1, argv + argc});
    const auto model =
        llm::ModelConfig::byName(cfg.getString("model", "opt-66b"));
    const int devices = static_cast<int>(cfg.getInt("devices", 8));

    llm::InferenceRequest req;
    req.inputTokens = cfg.getInt("in", 64);
    req.outputTokens = cfg.getInt("out", 128);

    core::PnmPlatformConfig pcfg;
    pcfg.channelGrouping = 16;

    std::printf("%s on %d CXL-PNM devices, %llu-token generations\n\n",
                model.name.c_str(), devices,
                static_cast<unsigned long long>(req.outputTokens));
    std::printf("%-10s %14s %14s %12s %12s %8s\n", "plan",
                "latency/tok", "throughput", "power (W)", "tok/kJ",
                "comm");

    for (int mp = 1; mp <= devices; mp *= 2) {
        if (devices % mp != 0)
            continue;
        if (model.numHeads % mp != 0 || model.vocabSize % mp != 0)
            continue;
        core::ParallelismPlan plan{mp, devices / mp};
        const auto r = runPnmAppliance(model, req, pcfg, plan);
        char name[32];
        std::snprintf(name, sizeof name, "MP%dxDP%d", mp,
                      devices / mp);
        std::printf("%-10s %11.2f ms %9.2f tok/s %12.0f %12.2f %6.1f%%\n",
                    name, r.tokenLatencySeconds * 1e3,
                    r.throughputTokensPerSec, r.avgAppliancePowerW,
                    r.tokensPerJoule * 1e3, r.commFraction * 100.0);
    }

    std::printf("\nreading the frontier: DP maximises throughput and "
                "energy efficiency;\nMP buys per-request latency at "
                "the cost of cross-device reductions\n(two per layer, "
                "host-orchestrated over CXL).\n");
    return 0;
}
