/**
 * @file
 * Closed-loop serving demo: generate a synthetic request trace and
 * play it through the continuous-batching serving simulator on a
 * CXL-PNM appliance (or a GPU node), then print the service-level
 * report - TTFT and per-token latency percentiles, batch occupancy,
 * KV-pool utilization, throughput and SLO goodput.
 *
 *   ./serving_demo [model=opt-13b] [platform=pnm|gpu] [qps=0.3]
 *                  [n=64] [in=64] [out=128] [batch=16] [mp=1] [dp=1]
 *                  [serial=0] [seed=1] [slo_ms=0] [stats=0]
 *                  [faults=0] [fseed=42] [trace=] [trace_topk=5]
 *                  [kv_block=0] [prefix_reuse=0] [prefix_tokens=32]
 *                  [prefix_groups=4] [preempt=1] [kv_gb=0]
 *                  [kv_far_blocks=0] [tier_policy=lru] [prefetch=1]
 *                  [far_access=stream] [pin_window=4]
 *                  [long_ctx=0] [ctx_min=131072] [ctx_max=131072]
 *                  [mode=cycle|analytic|mixed] [calib=profile.txt]
 *                  [snapshot=warm.snap] [restore=warm.snap]
 *                  [bursty=0] [burst_on=1] [burst_off=1]
 *                  [burst_frac=0] [tenants=1] [deadline_ms=0]
 *                  [admit=0] [tenant_rate=0] [tenant_burst=8]
 *                  [max_queue=0] [kv_headroom=0] [shed=0]
 *                  [queue_timeout=0] [shed_margin=1] [brownout=0]
 *                  [bo_high=64] [bo_low=16] [bo_sustain=8] [bo_max=3]
 *                  [breaker=0] [br_window=16] [br_fails=4]
 *                  [br_latency_ms=0] [br_backoff=0.5]
 *                  [chunk_tokens=0] [disagg=0] [prefill_groups=1]
 *
 * `mp`/`dp` follow the paper's §VIII-A appliance plans (tensor split
 * across mp devices, dp independent replicas); `serial=1` turns
 * continuous batching off for an A/B against one-request-at-a-time
 * serving. `slo_ms` sets the per-token goodput deadline.
 *
 * `kv_block=<tokens>` switches KV admission from the worst-case byte
 * pool to the paged block manager at that block size (0 keeps the
 * byte pool and leaves every output bit-identical to the non-paged
 * build). Under paging, `prefix_reuse`/`prefix_tokens`/
 * `prefix_groups` add a shared-prefix workload whose common blocks
 * the prefix cache deduplicates, `preempt=0` disables
 * preempt-and-recompute in favor of stalling, and the demo prints a
 * paging report (hit rate, blocks, fragmentation, preemptions).
 * `kv_gb` overrides the per-group KV capacity to make the pool bind.
 *
 * `faults=<rate>` injects IterationFail faults at that per-iteration
 * probability on every group (seeded by fseed, fully deterministic)
 * and prints the RAS summary: iteration failures, request retries,
 * abandoned requests, degraded time, and availability.
 *
 * `kv_far_blocks=<blocks>` (paged mode only) adds a CXL-far KV tier
 * of that many blocks behind the near pool: near-tier overflow
 * demotes blocks across the link instead of blocking admission,
 * governed by `tier_policy=lru|pinned` (`pin_window` sizes the pinned
 * recency window), `far_access=stream|promote` picks how far KV is
 * attended, and `prefetch=0` disables the decode-ahead prefetcher.
 * `long_ctx=1` switches the trace to long-context prompts drawn
 * uniform over [ctx_min, ctx_max] tokens (the regime the far tier
 * exists for) and lets the latency histograms auto-extend; malformed
 * or oversized long-context configs are rejected up front with a
 * validation error. The demo prints a tier report (migrations,
 * streamed bytes, exposed vs. hidden link time).
 *
 * `trace=<path>` records the serving request lifecycle (arrivals,
 * admissions, per-token instants, retire/requeue/fail), iteration
 * spans and queue/KV/batch counters as Chrome-trace JSON - open it at
 * ui.perfetto.dev - and prints a per-track busy summary. The trace is
 * byte-deterministic for a given seed.
 *
 * `mode=cycle|analytic|mixed` selects the execution mode (PNM only):
 * cycle prices every iteration through the event-driven engine,
 * analytic fast-forwards on the calibrated cost model, mixed keeps
 * group 0 cycle-accurate while the other groups fast-forward. The
 * cost model comes from calibrateWithAnchors (held-out validation
 * error is printed); `calib=<path>` loads a stored profile when the
 * file exists and calibrates-then-saves otherwise. Long-context
 * traces must run analytic - the cycle engine simulates the full
 * prompt. Bad modes, platform mismatches, and profile-fingerprint
 * mismatches are rejected up front with a typed error.
 *
 * `snapshot=<path>` saves the warm serving state (every group, the
 * metrics, fault/trace/generator state when attached) once every
 * request has been submitted; `restore=<path>` starts a later run
 * from that state instead of regenerating and resubmitting, and its
 * report is byte-identical to the saving run's. The restoring stack
 * must be configured identically - mismatches are typed errors.
 *
 * Overload protection (all off by default, leaving the output
 * bit-identical to the unprotected build): `bursty=1` switches
 * arrivals to a Markov-modulated on/off Poisson stream (`burst_on`/
 * `burst_off` mean phase seconds, `burst_frac` the OFF-phase rate
 * fraction); `tenants=<n>` stamps tenant ids; `deadline_ms` stamps a
 * TTFT deadline on every request. `admit=1` arms the front-door gate
 * (`tenant_rate`/`tenant_burst` the per-tenant token bucket,
 * `max_queue` the appliance queue-depth gate, `kv_headroom` the KV
 * demand gate). `shed=1` arms deadline-aware shedding (`queue_timeout`
 * the queue-time budget seconds, `shed_margin` the estimate safety
 * factor) and requires deadlines or a timeout. `brownout=1` arms the
 * ladder (`bo_high`/`bo_low` queue watermarks, `bo_sustain`
 * iterations, `bo_max` deepest level). `breaker=1` arms per-group
 * circuit breakers (`br_window`/`br_fails` the rolling window,
 * `br_latency_ms` the latency-breach threshold, `br_backoff` the base
 * backoff seconds); on a single-group appliance it only warns, since
 * there is nowhere to route around. Malformed combinations are typed
 * OverloadConfigError rejections. The demo prints an overload report
 * (shed/timed-out/throttled counts, inclusive SLO attainment,
 * brownout peak, breaker opens, per-tenant breakdown).
 *
 * TTFT head-of-line blocking (both off by default, bit-identical when
 * off): `chunk_tokens=<n>` admits long prompts as n-token prefill
 * chunks that interleave with decode instead of monopolizing whole
 * iterations; TTFT is stamped when the last chunk completes.
 * `disagg=1` dedicates the first `prefill_groups` data-parallel groups
 * to prefill and the rest to decode - at first token the KV cache is
 * handed over a CXL link (priced through the link budget) to the
 * least-loaded decode group, so decode batches never stall behind a
 * long prefill. Requires dp > prefill_groups. The demo prints a
 * disaggregation report (chunked prefills, handovers, handover bytes
 * and link seconds).
 */

#include <cstdio>
#include <iostream>
#include <memory>
#include <string>

#include "serve/calibration.hh"
#include "serve/cost_model.hh"
#include "serve/dispatcher.hh"
#include "serve/metrics.hh"
#include "serve/request_generator.hh"
#include "serve/snapshot.hh"
#include "sim/config.hh"
#include "sim/fault.hh"
#include "sim/logging.hh"
#include "sim/trace.hh"

using namespace cxlpnm;

int
main(int argc, char **argv)
{
    auto cfg = Config::fromArgs({argv + 1, argv + argc});
    auto model =
        llm::ModelConfig::byName(cfg.getString("model", "opt-13b"));
    const std::string platform = cfg.getString("platform", "pnm");

    core::ParallelismPlan plan;
    plan.modelParallel = cfg.getInt("mp", 1);
    plan.dataParallel = cfg.getInt("dp", 1);

    serve::TraceConfig trace;
    trace.requestsPerSec = cfg.getDouble("qps", 0.3);
    trace.numRequests = cfg.getInt("n", 64);
    trace.input = serve::LengthDistribution::fixed(cfg.getInt("in", 64));
    trace.output =
        serve::LengthDistribution::fixed(cfg.getInt("out", 128));
    trace.seed = cfg.getInt("seed", 1);
    trace.prefixReuse = cfg.getDouble("prefix_reuse", 0.0);
    trace.prefixTokens = cfg.getInt("prefix_tokens", 32);
    trace.prefixGroups = cfg.getInt("prefix_groups", 4);
    if (cfg.getBool("bursty", false)) {
        trace.arrivals = serve::ArrivalProcess::Bursty;
        trace.burstOnSeconds = cfg.getDouble("burst_on", 1.0);
        trace.burstOffSeconds = cfg.getDouble("burst_off", 1.0);
        trace.burstOffRateFraction = cfg.getDouble("burst_frac", 0.0);
    }
    trace.numTenants = cfg.getInt("tenants", 1);
    trace.ttftDeadlineSeconds =
        cfg.getDouble("deadline_ms", 0.0) * 1e-3;

    const bool long_ctx = cfg.getBool("long_ctx", false);
    if (long_ctx) {
        trace.longContext = true;
        trace.longCtxMinTokens = cfg.getInt("ctx_min", 131072);
        trace.longCtxMaxTokens = cfg.getInt("ctx_max", 131072);
    }
    const std::uint64_t full_ctx =
        trace.maxInputTokens() + trace.output.max();
    if (long_ctx && model.maxPositions < full_ctx)
        model.maxPositions = full_ctx;

    serve::SchedulerConfig sched;
    sched.maxBatch = cfg.getInt("batch", 16);
    sched.continuousBatching = !cfg.getBool("serial", false);
    const std::uint64_t kv_block = cfg.getInt("kv_block", 0);
    if (kv_block > 0) {
        sched.paged.enabled = true;
        sched.paged.blockTokens = static_cast<std::uint32_t>(kv_block);
        sched.paged.preemption = cfg.getBool("preempt", true);
    }
    sched.chunkTokens = cfg.getInt("chunk_tokens", 0);
    const bool disagg = cfg.getBool("disagg", false);
    const std::size_t prefill_groups = cfg.getInt("prefill_groups", 1);
    if (disagg &&
        prefill_groups + 1 >
            static_cast<std::size_t>(plan.dataParallel)) {
        std::fprintf(stderr, "disagg=1 needs dp > prefill_groups: "
                     "%zu prefill groups leave no decode group out "
                     "of dp=%d\n",
                     prefill_groups, plan.dataParallel);
        return 1;
    }
    const std::uint64_t far_blocks = cfg.getInt("kv_far_blocks", 0);
    if (far_blocks > 0) {
        if (kv_block == 0) {
            std::fprintf(stderr, "kv_far_blocks needs the paged "
                         "backend: set kv_block=<tokens>\n");
            return 1;
        }
        sched.paged.tier.farBlocks = far_blocks;
        sched.paged.tier.policy = serve::tier::tierPolicyByName(
            cfg.getString("tier_policy", "lru"));
        sched.paged.tier.prefetch = cfg.getBool("prefetch", true);
        sched.paged.tier.farAccess = serve::tier::farAccessByName(
            cfg.getString("far_access", "stream"));
        sched.paged.tier.pinnedWindowBlocks = static_cast<std::uint32_t>(
            cfg.getInt("pin_window", 4));
    }

    // --- overload protection (all off by default) ---
    serve::AdmissionConfig admit;
    serve::CircuitBreakerConfig breaker;
    try {
        if (cfg.getBool("shed", false)) {
            sched.shed.enabled = true;
            sched.shed.queueTimeoutSeconds =
                cfg.getDouble("queue_timeout", 0.0);
            sched.shed.estimateMargin =
                cfg.getDouble("shed_margin", 1.0);
            if (trace.ttftDeadlineSeconds <= 0.0 &&
                sched.shed.queueTimeoutSeconds <= 0.0)
                throw serve::OverloadConfigError(
                    "shed=1 without SLO deadlines: set deadline_ms= "
                    "(or a queue_timeout=) so there is something to "
                    "shed against");
            sched.shed.validate();
        }
        if (cfg.getBool("brownout", false)) {
            sched.brownout.enabled = true;
            sched.brownout.queueHighWatermark =
                cfg.getInt("bo_high", 64);
            sched.brownout.queueLowWatermark = cfg.getInt("bo_low", 16);
            sched.brownout.sustainIterations =
                cfg.getInt("bo_sustain", 8);
            sched.brownout.maxLevel = cfg.getInt("bo_max", 3);
            sched.brownout.validate();
        }
        if (cfg.getBool("admit", false)) {
            admit.enabled = true;
            admit.tenantRatePerSec = cfg.getDouble("tenant_rate", 0.0);
            admit.tenantBurst = cfg.getDouble("tenant_burst", 8.0);
            admit.maxQueueDepth = cfg.getInt("max_queue", 0);
            admit.kvHeadroomFraction =
                cfg.getDouble("kv_headroom", 0.0);
            admit.validate();
        }
        if (cfg.getBool("breaker", false)) {
            breaker.enabled = true;
            breaker.windowSize = cfg.getInt("br_window", 16);
            breaker.failureThreshold = cfg.getInt("br_fails", 4);
            breaker.latencyThresholdSeconds =
                cfg.getDouble("br_latency_ms", 0.0) * 1e-3;
            breaker.backoffBaseSeconds =
                cfg.getDouble("br_backoff", 0.5);
            breaker.seed = trace.seed;
            breaker.validate();
            if (plan.dataParallel == 1)
                std::fprintf(stderr,
                             "warning: breaker=1 on a single-group "
                             "appliance: an open breaker has nowhere "
                             "to route around\n");
        }
    } catch (const serve::OverloadConfigError &e) {
        std::fprintf(stderr, "invalid overload config: %s\n",
                     e.what());
        return 1;
    }
    const bool overload_on = sched.shed.enabled ||
        sched.brownout.enabled || admit.enabled || breaker.enabled;

    // --- calibrate the per-group cost model ---
    // Long-context runs calibrate at a modest context and let the
    // fitted linear terms extrapolate: simulating a million-token
    // prefill just for coefficients would exhaust the device's
    // register file.
    const std::uint64_t calib_ctx =
        long_ctx ? std::min<std::uint64_t>(full_ctx, 1024) : full_ctx;
    serve::BatchCostModel cost;
    std::uint64_t group_kv = 0;
    core::PnmPlatformConfig pcfg;
    pcfg.channelGrouping = 8;
    if (platform == "pnm") {
        cost = serve::calibratePnmCostModel(model, pcfg, calib_ctx,
                                            plan.modelParallel);
        if (plan.modelParallel > 1)
            serve::addModelParallelComm(cost, model, pcfg.link,
                                        core::D2dModel{},
                                        plan.modelParallel);
        group_kv = serve::pnmKvCapacityBytes(model, pcfg,
                                             plan.modelParallel);
    } else if (platform == "gpu") {
        if (plan.modelParallel != 1) {
            std::printf("note: gpu platform models tensor parallelism "
                        "as an ideal shard (no interconnect cost)\n");
        }
        const auto spec = gpu::GpuSpec::a100_40g();
        cost = serve::calibrateGpuCostModel(model, spec,
                                            gpu::GpuCalibration{},
                                            calib_ctx,
                                            plan.modelParallel);
        group_kv = serve::gpuKvCapacityBytes(model, spec,
                                             plan.modelParallel);
    } else {
        std::fprintf(stderr, "unknown platform '%s' (pnm|gpu)\n",
                     platform.c_str());
        return 1;
    }

    // --- calibrated fast-forward configuration (mode=/calib=) ---
    serve::ExecMode mode = serve::ExecMode::Analytic;
    bool mode_set = false;
    serve::CalibrationProfile profile;
    bool have_profile = false;
    try {
        const std::string mode_name = cfg.getString("mode", "");
        const std::string calib_path = cfg.getString("calib", "");
        if (!mode_name.empty()) {
            mode = serve::execModeByName(mode_name);
            mode_set = true;
            if (platform != "pnm")
                throw serve::CalibrationError(
                    "mode= prices PNM stages; platform=gpu always "
                    "runs its analytic cost model");
            if (long_ctx && mode != serve::ExecMode::Analytic)
                throw serve::CalibrationError(
                    "long-context traces must run mode=analytic: the "
                    "cycle engine simulates the full prompt");
        }
        if (mode_set || !calib_path.empty()) {
            if (platform != "pnm")
                throw serve::CalibrationError(
                    "calib= profiles are calibrated against the PNM "
                    "engine; use platform=pnm");
            bool cached = false;
            if (!calib_path.empty()) {
                if (std::FILE *f = std::fopen(calib_path.c_str(),
                                              "rb")) {
                    std::fclose(f);
                    cached = true;
                }
            }
            profile = cached
                ? serve::loadProfile(calib_path, model, pcfg,
                                     calib_ctx, plan.modelParallel)
                : serve::calibrateWithAnchors(model, pcfg, calib_ctx,
                                              plan.modelParallel);
            if (!cached && !calib_path.empty())
                serve::saveProfile(profile, calib_path);
            have_profile = true;
            // Price through the anchored profile so the analytic
            // fast-forward path and the scheduler's built-in model
            // agree bit for bit.
            cost = profile.cost;
            if (plan.modelParallel > 1)
                serve::addModelParallelComm(cost, model, pcfg.link,
                                            core::D2dModel{},
                                            plan.modelParallel);
        }
    } catch (const serve::CalibrationError &e) {
        std::fprintf(stderr, "invalid fast-forward config: %s\n",
                     e.what());
        return 1;
    }

    std::printf("serving %s on %s: plan %dx%d (mp x dp), %zu requests "
                "at %.3f req/s, %llu in / %llu out\n",
                model.name.c_str(), platform.c_str(),
                plan.modelParallel, plan.dataParallel,
                trace.numRequests, trace.requestsPerSec,
                static_cast<unsigned long long>(trace.input.max()),
                static_cast<unsigned long long>(trace.output.max()));
    const double kv_gb = cfg.getDouble("kv_gb", 0.0);
    if (kv_gb > 0.0)
        group_kv = static_cast<std::uint64_t>(kv_gb * GB);

    // Reject a workload no group could ever serve before simulating
    // anything (the typed validation the long-context mode ships).
    try {
        std::uint64_t group_tokens = 0;
        if (sched.paged.enabled) {
            const std::uint64_t block_bytes =
                model.kvCacheBytes(sched.paged.blockTokens);
            group_tokens = (group_kv / block_bytes + far_blocks) *
                sched.paged.blockTokens;
        }
        trace.validate(model.maxPositions, group_tokens);
    } catch (const serve::TraceConfigError &e) {
        std::fprintf(stderr, "invalid trace config: %s\n", e.what());
        return 1;
    }

    std::printf("scheduler: %s, batch cap %zu, per-group KV pool "
                "%.1f GB\n",
                sched.continuousBatching ? "continuous batching"
                                         : "serial (one at a time)",
                sched.maxBatch, group_kv / GB);
    if (mode_set)
        std::printf("execution mode: %s (calibration max rel err "
                    "%.3f%% over %zu held-out anchors)\n",
                    serve::execModeName(mode),
                    100.0 * profile.maxRelErr(),
                    profile.anchors.size());
    else if (have_profile)
        std::printf("calibration profile: max rel err %.3f%% over "
                    "%zu held-out anchors\n",
                    100.0 * profile.maxRelErr(),
                    profile.anchors.size());
    if (sched.paged.enabled)
        std::printf("paged KV: %u-token blocks (%.1f KB each), "
                    "prefix caching on, preemption %s, "
                    "prefix reuse %.2f over %zu groups x %llu tokens\n",
                    sched.paged.blockTokens,
                    model.kvCacheBytes(sched.paged.blockTokens) / 1024.0,
                    sched.paged.preemption ? "on" : "off",
                    trace.prefixReuse, trace.prefixGroups,
                    static_cast<unsigned long long>(
                        trace.prefixTokens));
    if (sched.paged.tier.enabled())
        std::printf("far KV tier: %llu blocks behind the near pool, "
                    "policy %s (pin window %u), far access %s, "
                    "decode-ahead prefetch %s\n",
                    static_cast<unsigned long long>(far_blocks),
                    serve::tier::tierPolicyName(sched.paged.tier.policy),
                    sched.paged.tier.pinnedWindowBlocks,
                    serve::tier::farAccessName(
                        sched.paged.tier.farAccess),
                    sched.paged.tier.prefetch ? "on" : "off");
    if (overload_on)
        std::printf("overload protection: admit %s, shed %s, "
                    "brownout %s, breaker %s\n",
                    admit.enabled ? "on" : "off",
                    sched.shed.enabled ? "on" : "off",
                    sched.brownout.enabled ? "on" : "off",
                    breaker.enabled ? "on" : "off");
    if (sched.chunkTokens > 0)
        std::printf("chunked prefill: %llu-token chunks interleave "
                    "with decode\n",
                    static_cast<unsigned long long>(
                        sched.chunkTokens));
    if (disagg)
        std::printf("disaggregated prefill/decode: %zu prefill + %zu "
                    "decode groups, KV handover priced over the CXL "
                    "link\n",
                    prefill_groups,
                    static_cast<std::size_t>(plan.dataParallel) -
                        prefill_groups);
    if (long_ctx)
        std::printf("long-context trace: prompts uniform over "
                    "[%llu, %llu] tokens\n",
                    static_cast<unsigned long long>(
                        trace.longCtxMinTokens),
                    static_cast<unsigned long long>(
                        trace.longCtxMaxTokens));
    std::printf("\n");

    // --- play the trace ---
    serve::MetricsConfig mcfg;
    mcfg.sloTokenSeconds = cfg.getDouble("slo_ms", 0.0) * 1e-3;
    // A 1M-token prefill's TTFT sits far beyond chat-sized histogram
    // ranges; let them double instead of clamping.
    mcfg.autoExtendLatencies = long_ctx;
    serve::ServeMetrics metrics(nullptr, "serve", mcfg);
    serve::ApplianceDispatcher disp(model, cost, plan, group_kv, sched,
                                    metrics);
    if (admit.enabled || breaker.enabled)
        disp.configureOverload(admit, breaker);
    if (disagg) {
        serve::ApplianceDispatcher::DisaggConfig dc;
        dc.enabled = true;
        dc.prefillGroups = prefill_groups;
        disp.configureDisagg(dc);
    }

    std::unique_ptr<serve::AnalyticPricer> analytic;
    std::unique_ptr<serve::CyclePricer> cycle;
    if (mode_set) {
        analytic = std::make_unique<serve::AnalyticPricer>(cost);
        if (mode != serve::ExecMode::Analytic)
            cycle = std::make_unique<serve::CyclePricer>(
                model, pcfg, cost, plan.modelParallel);
        for (std::size_t g = 0; g < disp.groupCount(); ++g) {
            const serve::IterationPricer *p = analytic.get();
            if (mode == serve::ExecMode::Cycle ||
                (mode == serve::ExecMode::Mixed && g == 0))
                p = cycle.get();
            disp.setPricer(g, p);
        }
    }

    const double fault_rate = cfg.getDouble("faults", 0.0);
    fault::FaultInjector inj(
        static_cast<std::uint64_t>(cfg.getInt("fseed", 42)));
    if (fault_rate > 0.0) {
        for (int g = 0; g < plan.dataParallel; ++g)
            inj.arm(fault::FaultSpec::probabilistic(
                "appliance.group" + std::to_string(g) + ".iteration",
                fault::FaultKind::IterationFail, fault_rate));
        disp.attachFaultInjector(&inj, "appliance");
        std::printf("fault injection: IterationFail at %.4f per "
                    "iteration on every group (seed %llu)\n\n",
                    fault_rate,
                    static_cast<unsigned long long>(inj.seed()));
    }

    const std::string trace_path = cfg.getString("trace", "");
    trace::Tracer tracer;
    if (!trace_path.empty())
        disp.attachTracer(&tracer, "appliance");

    const std::string snap_path = cfg.getString("snapshot", "");
    const std::string restore_path = cfg.getString("restore", "");
    serve::RequestGenerator gen(trace);
    try {
        if (!restore_path.empty()) {
            // Skip generation and submission entirely: pick up the
            // warm post-submission state a `snapshot=` run saved. The
            // stack must be configured identically (component
            // restores fatal on structural mismatch).
            const auto snap = serve::loadSnapshot(restore_path);
            disp.restore(snap.groups);
            metrics.restore(snap.metrics);
            if (snap.hasFaults)
                inj.restore(snap.faults);
            if (snap.hasTrace && !trace_path.empty())
                tracer.restore(snap.trace);
            if (snap.hasGenerator)
                gen.restore(snap.generator);
            if (snap.hasOverload)
                disp.restoreOverload(snap.overload);
            if (snap.hasDisagg)
                disp.restoreDisagg(snap.disagg);
            std::printf("restored warm state from %s "
                        "(clock %.3f s)\n\n",
                        restore_path.c_str(), disp.clockSeconds());
        } else {
            while (!gen.exhausted())
                disp.submit(gen.next());
            if (!snap_path.empty()) {
                // Warm state: every request submitted, every group
                // advanced to the last arrival. A restore= run resumes
                // here and reports byte-identically.
                serve::ServingSnapshot snap;
                snap.groups = disp.state();
                snap.metrics = metrics.state();
                if (fault_rate > 0.0) {
                    snap.hasFaults = true;
                    snap.faults = inj.state();
                }
                if (!trace_path.empty()) {
                    snap.hasTrace = true;
                    snap.trace = tracer.state();
                }
                snap.hasGenerator = true;
                snap.generator = gen.state();
                if (disp.overloadConfigured()) {
                    snap.hasOverload = true;
                    snap.overload = disp.overloadState();
                }
                if (disp.disaggConfigured()) {
                    snap.hasDisagg = true;
                    snap.disagg = disp.disaggState();
                }
                serve::saveSnapshot(snap, snap_path);
                std::printf("saved warm snapshot to %s "
                            "(clock %.3f s)\n\n",
                            snap_path.c_str(), disp.clockSeconds());
            }
        }
    } catch (const serve::SnapshotError &e) {
        std::fprintf(stderr, "invalid snapshot config: %s\n", e.what());
        return 1;
    } catch (const FatalError &e) {
        std::fprintf(stderr, "snapshot does not match this stack: %s\n",
                     e.what());
        return 1;
    }
    disp.drain();

    if (!trace_path.empty()) {
        if (!tracer.writeFile(trace_path)) {
            std::fprintf(stderr, "cannot write trace to '%s'\n",
                         trace_path.c_str());
            return 1;
        }
        std::printf("trace: %zu events on %zu tracks -> %s\n\n",
                    tracer.eventCount(), tracer.trackCount(),
                    trace_path.c_str());
        tracer.summary(std::cout,
                       static_cast<std::size_t>(
                           cfg.getInt("trace_topk", 5)));
        std::printf("\n");
    }

    const auto r = metrics.report(disp.clockSeconds());

    std::printf("completed %llu / rejected %llu requests in %.2f s\n",
                static_cast<unsigned long long>(r.completed),
                static_cast<unsigned long long>(r.rejected),
                r.makespanSeconds);
    for (std::size_t g = 0; g < disp.groupCount(); ++g)
        std::printf("  group %zu served %zu requests\n", g,
                    disp.group(g).finished().size());

    std::printf("\nthroughput        %10.2f tokens/s (%.3f req/s)\n",
                r.throughputTokensPerSec, r.achievedQps);
    std::printf("token latency     p50 %7.2f ms   p95 %7.2f ms   "
                "p99 %7.2f ms\n",
                r.tokenLatencyP50 * 1e3, r.tokenLatencyP95 * 1e3,
                r.tokenLatencyP99 * 1e3);
    std::printf("ttft              p50 %7.2f s    p95 %7.2f s\n",
                r.ttftP50, r.ttftP95);
    std::printf("batch occupancy   %10.2f mean (cap %zu)\n",
                r.meanBatchSize, sched.maxBatch);
    std::printf("queue depth       %10.2f mean\n", r.meanQueueDepth);
    std::printf("KV utilization    %10.1f %% peak\n",
                100.0 * r.peakKvUtilization);
    if (mcfg.sloTokenSeconds > 0.0)
        std::printf("goodput           %10.2f tokens/s (%.0f%% of "
                    "requests met the SLO)\n",
                    r.goodputTokensPerSec, 100.0 * r.sloFraction);

    if (sched.paged.enabled) {
        std::printf("\n--- paged KV report ---\n");
        std::printf("KV utilization    %10.1f %% time-weighted\n",
                    100.0 * r.timeAvgKvUtilization);
        std::printf("KV blocks         %10llu peak, %.1f mean in use\n",
                    static_cast<unsigned long long>(
                        r.peakKvBlocksInUse),
                    r.meanKvBlocksInUse);
        std::printf("fragmentation     %10.1f %% of allocated slots\n",
                    100.0 * r.kvFragmentation);
        std::printf("prefix hit rate   %10.1f %% (%llu / %llu shared "
                    "tokens cached, %llu / %llu full blocks)\n",
                    100.0 * r.prefixHitRate,
                    static_cast<unsigned long long>(
                        r.cachedPrefixTokens),
                    static_cast<unsigned long long>(
                        r.sharedPrefixTokens),
                    static_cast<unsigned long long>(r.prefixHitBlocks),
                    static_cast<unsigned long long>(
                        r.prefixLookupBlocks));
        std::printf("cow copies        %10llu\n",
                    static_cast<unsigned long long>(r.cowCopies));
        std::printf("cache evictions   %10llu\n",
                    static_cast<unsigned long long>(r.cacheEvictions));
        std::printf("preemptions       %10llu (%llu tokens "
                    "recomputed)\n",
                    static_cast<unsigned long long>(
                        r.preemptionsForCapacity),
                    static_cast<unsigned long long>(r.recomputeTokens));
    }

    if (sched.paged.tier.enabled()) {
        std::printf("\n--- far KV tier report ---\n");
        std::printf("migrations        %10llu demotions, %llu "
                    "promotions, %llu far-born blocks\n",
                    static_cast<unsigned long long>(r.tierDemotions),
                    static_cast<unsigned long long>(r.tierPromotions),
                    static_cast<unsigned long long>(
                        r.tierFarBornBlocks));
        std::printf("link traffic      %10.2f GB migrated, %.2f GB "
                    "streamed for attention\n",
                    r.tierMigratedBytes / GB, r.tierStreamedBytes / GB);
        std::printf("link time         %10.2f s exposed (stall), "
                    "%.2f s hidden by prefetch\n",
                    r.tierExposedSeconds, r.tierHiddenSeconds);
        std::printf("tier occupancy    %10llu peak near, %llu peak "
                    "far blocks\n",
                    static_cast<unsigned long long>(
                        r.peakNearBlocksInUse),
                    static_cast<unsigned long long>(
                        r.peakFarBlocksInUse));
        std::printf("anomalies         %10llu abandoned migrations, "
                    "%llu pin violations\n",
                    static_cast<unsigned long long>(
                        r.tierAbandonedMigrations),
                    static_cast<unsigned long long>(
                        r.tierPinViolations));
    }

    if (sched.chunkTokens > 0 || disagg) {
        std::printf("\n--- disaggregation report ---\n");
        std::printf("chunked prefills  %10llu (%llu chunk "
                    "iterations)\n",
                    static_cast<unsigned long long>(
                        r.chunkedPrefills),
                    static_cast<unsigned long long>(
                        r.chunkIterations));
        if (disagg) {
            std::printf("KV handovers      %10llu (%.2f GB over the "
                        "link)\n",
                        static_cast<unsigned long long>(r.handovers),
                        r.handoverBytes / GB);
            std::printf("handover link     %10.3f s of transfer "
                        "time\n",
                        r.handoverLinkSeconds);
        }
    }

    if (overload_on) {
        std::printf("\n--- overload report ---\n");
        std::printf("submitted         %10llu requests\n",
                    static_cast<unsigned long long>(r.submitted));
        std::printf("shed              %10llu (deadline) + %llu "
                    "(queue timeout)\n",
                    static_cast<unsigned long long>(r.shedRequests),
                    static_cast<unsigned long long>(
                        r.timedOutRequests));
        std::printf("throttled         %10llu at the admission gate\n",
                    static_cast<unsigned long long>(
                        r.throttledRequests));
        std::printf("served fraction   %10.1f %% of submitted\n",
                    100.0 * r.servedFraction);
        std::printf("SLO attainment    %10.1f %% (all terminals in "
                    "the denominator)\n",
                    100.0 * r.sloAttainment);
        std::printf("ttft p99          %10.2f s over admitted "
                    "requests\n", r.ttftP99);
        if (sched.brownout.enabled)
            std::printf("brownout peak     %10llu (max level %llu)\n",
                        static_cast<unsigned long long>(
                            r.brownoutPeakLevel),
                        static_cast<unsigned long long>(
                            sched.brownout.maxLevel));
        if (breaker.enabled)
            std::printf("breaker opens     %10llu\n",
                        static_cast<unsigned long long>(
                            r.breakerOpens));
        if (trace.numTenants > 1) {
            std::printf("per-tenant        submitted completed shed "
                        "timed-out throttled\n");
            for (const auto &tb : r.tenants)
                std::printf("  tenant %-8llu %9llu %9llu %4llu %9llu "
                            "%9llu\n",
                            static_cast<unsigned long long>(tb.tenant),
                            static_cast<unsigned long long>(
                                tb.submitted),
                            static_cast<unsigned long long>(
                                tb.completed),
                            static_cast<unsigned long long>(tb.shed),
                            static_cast<unsigned long long>(
                                tb.timedOut),
                            static_cast<unsigned long long>(
                                tb.throttled));
        }
    }

    if (fault_rate > 0.0) {
        std::printf("\n--- RAS summary ---\n");
        std::printf("faults injected   %10llu\n",
                    static_cast<unsigned long long>(inj.totalFired()));
        std::printf("iteration fails   %10llu\n",
                    static_cast<unsigned long long>(
                        r.iterationFailures));
        std::printf("request retries   %10llu\n",
                    static_cast<unsigned long long>(r.requestRetries));
        std::printf("requests failed   %10llu (retry budget "
                    "exhausted)\n",
                    static_cast<unsigned long long>(r.requestsFailed));
        std::printf("degraded time     %10.2f s across %zu groups\n",
                    r.degradedSeconds, disp.groupCount());
        std::printf("availability      %10.4f\n", r.availability);
    }

    if (cfg.getBool("stats", false)) {
        std::printf("\n--- stat dump ---\n");
        metrics.dumpStats(std::cout);
    }
    return 0;
}
